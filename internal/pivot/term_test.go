package pivot

import (
	"testing"
	"testing/quick"
)

func TestTermTableInternLookup(t *testing.T) {
	tt := NewTermTable()
	id1 := tt.Intern(CInt(42))
	id2 := tt.Intern(CStr("42"))
	id3 := tt.Intern(Null(1))
	if id1 == id2 || id1 == id3 || id2 == id3 {
		t.Fatalf("distinct terms share ids: %d %d %d", id1, id2, id3)
	}
	if got := tt.Intern(CInt(42)); got != id1 {
		t.Errorf("re-intern returned %d, want %d", got, id1)
	}
	// CInt normalizes to int64, so an equal-keyed constant reuses the id.
	if got := tt.Intern(Const{V: int(42)}); got != id1 {
		t.Errorf("int/int64 constants with equal keys must share an id: %d vs %d", got, id1)
	}
	if got, ok := tt.Lookup(Null(1)); !ok || got != id3 {
		t.Errorf("Lookup(Null(1)) = %d,%v", got, ok)
	}
	if _, ok := tt.Lookup(Null(99)); ok {
		t.Error("Lookup of un-interned null succeeded")
	}
	if _, ok := tt.Lookup(Var("x")); ok {
		t.Error("Lookup of a variable succeeded")
	}
	if !SameTerm(tt.Term(id1), CInt(42)) || !SameTerm(tt.Term(id3), Null(1)) {
		t.Error("Term round-trip broken")
	}
	if tt.Len() != 3 {
		t.Errorf("Len = %d", tt.Len())
	}
}

func TestTermTableInternPanicsOnVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on interning a variable")
		}
	}()
	NewTermTable().Intern(Var("x"))
}

func TestTermTableClone(t *testing.T) {
	tt := NewTermTable()
	id := tt.Intern(CStr("a"))
	cl := tt.Clone()
	cl.Intern(CStr("b"))
	if got, ok := cl.Lookup(CStr("a")); !ok || got != id {
		t.Error("clone lost interned term or changed its id")
	}
	if _, ok := tt.Lookup(CStr("b")); ok {
		t.Error("clone mutation leaked into original")
	}
}

func TestTermKinds(t *testing.T) {
	cases := []struct {
		t    Term
		kind TermKind
	}{
		{Var("x"), KindVar},
		{CStr("a"), KindConst},
		{CInt(7), KindConst},
		{CFloat(3.5), KindConst},
		{CBool(true), KindConst},
		{Null(3), KindNull},
	}
	for _, c := range cases {
		if c.t.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.t, c.t.Kind(), c.kind)
		}
	}
}

func TestTermKeysDistinguishKinds(t *testing.T) {
	// A variable named N3, the null _N3, and the string constant "N3" must
	// all have distinct keys.
	terms := []Term{Var("N3"), Null(3), CStr("N3"), CStr("_N3"), CInt(3)}
	seen := map[string]Term{}
	for _, tm := range terms {
		if prev, ok := seen[tm.Key()]; ok {
			t.Errorf("key collision: %v and %v both have key %q", prev, tm, tm.Key())
		}
		seen[tm.Key()] = tm
	}
}

func TestConstKeyTypeSensitivity(t *testing.T) {
	if CStr("1").Key() == CInt(1).Key() {
		t.Error(`string "1" and int 1 must have different keys`)
	}
	if CInt(1).Key() == CFloat(1).Key() {
		t.Error("int 1 and float 1 must have different keys")
	}
	if CBool(true).Key() == CStr("true").Key() {
		t.Error(`bool true and string "true" must have different keys`)
	}
}

func TestNormalizeConst(t *testing.T) {
	if got := NormalizeConst(5); !SameTerm(got, CInt(5)) {
		t.Errorf("NormalizeConst(5) = %v", got)
	}
	if got := NormalizeConst(int32(5)); !SameTerm(got, CInt(5)) {
		t.Errorf("NormalizeConst(int32) = %v", got)
	}
	if got := NormalizeConst(float32(2)); !SameTerm(got, CFloat(2)) {
		t.Errorf("NormalizeConst(float32) = %v", got)
	}
	if got := NormalizeConst(CInt(9)); !SameTerm(got, CInt(9)) {
		t.Errorf("NormalizeConst(Const) = %v", got)
	}
	if got := NormalizeConst("s"); !SameTerm(got, CStr("s")) {
		t.Errorf("NormalizeConst(string) = %v", got)
	}
	if got := NormalizeConst(true); !SameTerm(got, CBool(true)) {
		t.Errorf("NormalizeConst(bool) = %v", got)
	}
}

func TestSameTerm(t *testing.T) {
	if !SameTerm(Var("x"), Var("x")) {
		t.Error("identical vars must be the same")
	}
	if SameTerm(Var("x"), Var("y")) {
		t.Error("distinct vars must differ")
	}
	if SameTerm(Var("x"), CStr("x")) {
		t.Error("var and const must differ")
	}
	if !SameTerm(CInt(3), NormalizeConst(3)) {
		t.Error("CInt(3) and NormalizeConst(3) must be the same")
	}
	if !SameTerm(nil, nil) {
		t.Error("nil == nil")
	}
	if SameTerm(nil, Var("x")) {
		t.Error("nil != var")
	}
}

func TestIsGround(t *testing.T) {
	if IsGround(Var("x")) {
		t.Error("var is not ground")
	}
	if !IsGround(CInt(1)) || !IsGround(Null(1)) {
		t.Error("consts and nulls are ground")
	}
}

// Property: the Key function is injective on int constants and on nulls.
func TestKeyInjectiveQuick(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return CInt(a).Key() == CInt(b).Key() && Null(a).Key() == Null(b).Key()
		}
		return CInt(a).Key() != CInt(b).Key() && Null(a).Key() != Null(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string constant keys never collide with int constant keys.
func TestKeyKindSeparationQuick(t *testing.T) {
	f := func(s string, i int64) bool {
		return CStr(s).Key() != CInt(i).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
