package rewrite

import (
	"fmt"
	"strconv"

	"repro/internal/pivot"
)

// Expand replaces every view atom of a rewriting by the view's definition
// body (the classical *expansion* of a view-based rewriting): per
// occurrence, the definition is renamed apart, its head variables are
// unified with the atom's arguments, and the instantiated body is inlined.
// The result is a query over the base schema, equivalent to the rewriting
// on every instance of the views' definitions — the object the C&B
// verification reasons about.
func Expand(r pivot.CQ, views []View) (pivot.CQ, error) {
	defs := map[string]View{}
	for _, v := range views {
		defs[v.Name] = v
	}
	var body []pivot.Atom
	for i, a := range r.Body {
		view, ok := defs[a.Pred]
		if !ok {
			return pivot.CQ{}, fmt.Errorf("rewrite: no view %q to expand", a.Pred)
		}
		def := view.Def.Rename("e" + strconv.Itoa(i) + "·")
		if def.Head.Arity() != a.Arity() {
			return pivot.CQ{}, fmt.Errorf("rewrite: atom %v arity mismatch with view %s", a, view.Name)
		}
		s := pivot.NewSubst()
		var extraEq [][2]pivot.Term
		for j, ht := range def.Head.Args {
			hv, isVar := ht.(pivot.Var)
			if !isVar {
				// Constant in the view head: it must match the atom's term;
				// record an equality to check.
				extraEq = append(extraEq, [2]pivot.Term{ht, a.Args[j]})
				continue
			}
			if prev, bound := s[hv]; bound {
				// Repeated head variable: both atom terms must be equal.
				extraEq = append(extraEq, [2]pivot.Term{prev, a.Args[j]})
				continue
			}
			s[hv] = a.Args[j]
		}
		for _, eq := range extraEq {
			if !pivot.SameTerm(s.ApplyTerm(eq[0]), s.ApplyTerm(eq[1])) {
				// Incompatible instantiation: the rewriting can never match;
				// surface it as an error (the rewriter never produces this).
				return pivot.CQ{}, fmt.Errorf("rewrite: atom %v incompatible with view %s head", a, view.Name)
			}
		}
		body = append(body, s.ApplyAtoms(def.Body)...)
	}
	out := pivot.CQ{Head: r.Head, Body: body}
	if err := out.Validate(); err != nil {
		return pivot.CQ{}, err
	}
	return out, nil
}
