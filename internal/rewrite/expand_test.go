package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pivot"
)

func TestExpandIdentity(t *testing.T) {
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	r := pivot.NewCQ(atom("Q", v("a")), pivot.NewAtom("V", v("a"), pivot.CStr("k")))
	exp, err := Expand(r, []View{view})
	if err != nil {
		t.Fatal(err)
	}
	want := pivot.NewCQ(atom("Q", v("a")), atom("R", v("a"), pivot.CStr("k")))
	if !pivot.Equivalent(exp, want) {
		t.Errorf("expansion = %v, want ≡ %v", exp, want)
	}
}

func TestExpandJoinView(t *testing.T) {
	vj := vQ("VJ", []pivot.Var{"x", "z"},
		atom("R", v("x"), v("y")), atom("S", v("y"), v("z")))
	r := pivot.NewCQ(atom("Q", v("a"), v("c")), pivot.NewAtom("VJ", v("a"), v("c")))
	exp, err := Expand(r, []View{vj})
	if err != nil {
		t.Fatal(err)
	}
	want := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("R", v("a"), v("b")), atom("S", v("b"), v("c")))
	if !pivot.Equivalent(exp, want) {
		t.Errorf("expansion = %v", exp)
	}
}

func TestExpandTwoOccurrencesRenamedApart(t *testing.T) {
	// V used twice: the existential variables of the two occurrences must
	// not collide.
	view := vQ("V", []pivot.Var{"x"}, atom("R", v("x"), v("hidden")))
	r := pivot.NewCQ(atom("Q", v("a"), v("b")),
		pivot.NewAtom("V", v("a")), pivot.NewAtom("V", v("b")))
	exp, err := Expand(r, []View{view})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Body) != 2 {
		t.Fatalf("expansion = %v", exp)
	}
	if pivot.SameTerm(exp.Body[0].Args[1], exp.Body[1].Args[1]) {
		t.Errorf("existentials collided: %v", exp)
	}
}

func TestExpandErrors(t *testing.T) {
	view := vQ("V", []pivot.Var{"x"}, atom("R", v("x")))
	r := pivot.NewCQ(atom("Q", v("a")), pivot.NewAtom("W", v("a")))
	if _, err := Expand(r, []View{view}); err == nil {
		t.Error("unknown view accepted")
	}
	bad := pivot.NewCQ(atom("Q", v("a")), pivot.NewAtom("V", v("a"), v("b")))
	if _, err := Expand(bad, []View{view}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// Property: for random chain queries over random view subsets, every
// rewriting's expansion is equivalent to the (minimized) input query.
func TestExpandOfRewritingsEquivalentQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	f := func(kRaw, seed uint8) bool {
		k := int(kRaw)%3 + 1 // chain length 1..3
		rng := rand.New(rand.NewSource(int64(seed)))
		var body []pivot.Atom
		for i := 0; i < k; i++ {
			body = append(body, atom("R"+string(rune('0'+i)),
				v("x"+string(rune('0'+i))), v("x"+string(rune('0'+i+1)))))
		}
		q := pivot.NewCQ(atom("Q", v("x0"), v("x"+string(rune('0'+k)))), body...)
		// Identity views for every relation plus, sometimes, a prefix-join
		// view.
		var views []View
		for i := 0; i < k; i++ {
			views = append(views, vQ("V"+string(rune('0'+i)),
				[]pivot.Var{"a", "b"}, atom("R"+string(rune('0'+i)), v("a"), v("b"))))
		}
		if k >= 2 && rng.Intn(2) == 0 {
			views = append(views, vQ("VP", []pivot.Var{"a", "c"},
				atom("R0", v("a"), v("b")), atom("R1", v("b"), v("c"))))
		}
		res, err := Rewrite(q, views, Options{})
		if err != nil || len(res.Rewritings) == 0 {
			return false
		}
		for _, r := range res.Rewritings {
			exp, err := Expand(r, views)
			if err != nil {
				return false
			}
			if !pivot.Equivalent(exp, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
