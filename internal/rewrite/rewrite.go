package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/chase"
	"repro/internal/pivot"
)

// Algorithm selects the backchase strategy.
type Algorithm int

const (
	// PACB is the provenance-aware Chase & Backchase (the default).
	PACB Algorithm = iota
	// NaiveCB enumerates all subqueries of the universal plan smallest-first.
	NaiveCB
)

func (a Algorithm) String() string {
	if a == NaiveCB {
		return "naive-C&B"
	}
	return "PACB"
}

// Options configures a rewriting run.
type Options struct {
	// Algorithm selects PACB (default) or the naive C&B baseline.
	Algorithm Algorithm
	// Schema holds the source-schema constraints (data-model encodings,
	// keys, inclusion dependencies). May be empty.
	Schema pivot.Constraints
	// AccessPatterns maps view predicates to binding-pattern adornments;
	// infeasible rewritings are discarded.
	AccessPatterns map[string]AccessPattern
	// BoundHeadPositions marks head argument positions whose values are
	// supplied at execution time (query parameters); the variables there
	// count as bound for the feasibility check.
	BoundHeadPositions []int
	// VerifyTermination pre-checks that the schema + view constraints are
	// weakly acyclic (guaranteed chase termination) and fails fast with
	// ErrNotWeaklyAcyclic otherwise, instead of relying on chase budgets.
	VerifyTermination bool
	// MaxRewritings stops the search after this many verified rewritings
	// (0 = find all minimal ones).
	MaxRewritings int
	// Workers sets the size of the verification worker pool used by the
	// PACB backchase (0 = runtime.GOMAXPROCS, 1 = fully serial). The
	// rewriting set returned is identical for every worker count; the naive
	// C&B baseline is always serial.
	Workers int
	// MaxCandidates bounds the number of candidate subqueries examined
	// (default 100_000); exceeding it aborts with ErrSearchBudget.
	MaxCandidates int
	// Chase configures the underlying chase runs.
	Chase chase.Options
}

func (o Options) withDefaults() Options {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 100_000
	}
	return o
}

// ErrSearchBudget is returned when candidate enumeration exceeds
// Options.MaxCandidates.
var ErrSearchBudget = errors.New("rewrite: candidate search budget exceeded")

// ErrNoRewriting is returned by RewriteOne when no equivalent rewriting over
// the views exists.
var ErrNoRewriting = errors.New("rewrite: no equivalent rewriting over the given views")

// ErrNotWeaklyAcyclic is returned (with VerifyTermination) when the
// combined constraint set does not guarantee chase termination.
var ErrNotWeaklyAcyclic = errors.New("rewrite: constraint set is not weakly acyclic (chase termination not guaranteed)")

// Stats reports search effort, the quantities compared in experiment E3.
type Stats struct {
	// UniversalPlanAtoms is the number of view atoms in the universal plan.
	UniversalPlanAtoms int
	// Candidates is the number of candidate subqueries generated.
	Candidates int
	// VerificationChases is the number of full verification chases run.
	VerificationChases int
	// Duration is the wall-clock time of the whole rewriting call.
	Duration time.Duration
}

// Result carries the rewritings found and the search statistics.
type Result struct {
	// Rewritings are equivalent, minimal, feasible rewritings of the input
	// query over the view predicates, smallest first.
	Rewritings []pivot.CQ
	Stats      Stats
}

// Rewrite finds conjunctive rewritings of q over the given views that are
// equivalent to q under the schema constraints. The input query is
// minimized first (PACB's cover condition is complete for core queries).
func Rewrite(q pivot.CQ, views []View, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, v := range views {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if p, ok := opts.AccessPatterns[v.Name]; ok {
			if err := p.Validate(v.Def.Head.Arity()); err != nil {
				return nil, err
			}
		}
	}
	q = pivot.Minimize(q)

	forward, backward := Constraints(views)
	if opts.VerifyTermination {
		all := opts.Schema.Merge(forward).Merge(backward)
		if ok, why := chase.WeaklyAcyclic(all); !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotWeaklyAcyclic, why)
		}
	}
	viewPreds := map[string]bool{}
	for _, v := range views {
		viewPreds[v.Name] = true
	}

	// Forward chase: universal plan with provenance.
	frozenInst, frozen := pivot.Freeze(q)
	seedCount := frozenInst.Size()
	fwd, err := chase.Chase(frozenInst, opts.Schema.Merge(forward), chase.Options{
		MaxSteps:        opts.Chase.MaxSteps,
		MaxFacts:        opts.Chase.MaxFacts,
		TrackProvenance: true,
	})
	if err != nil {
		if errors.Is(err, chase.ErrInconsistent) {
			// Query unsatisfiable under constraints: no rewriting is needed;
			// report none found.
			return &Result{Stats: Stats{Duration: time.Since(start)}}, nil
		}
		return nil, fmt.Errorf("rewrite: forward chase: %w", err)
	}

	up := buildUniversalPlan(q, frozen, seedCount, fwd, viewPreds)
	verifyCS, err := chase.Prepare(opts.Schema.Merge(forward).Merge(backward))
	if err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}

	searcher := &search{
		q:        q,
		up:       up,
		verifyCS: verifyCS,
		opts:     opts,
	}
	var rewritings []pivot.CQ
	switch opts.Algorithm {
	case NaiveCB:
		rewritings, err = searcher.naive()
	default:
		rewritings, err = searcher.pacb()
	}
	if err != nil {
		return nil, err
	}

	sort.SliceStable(rewritings, func(i, j int) bool {
		return len(rewritings[i].Body) < len(rewritings[j].Body)
	})
	res := &Result{Rewritings: rewritings}
	res.Stats = searcher.stats
	res.Stats.UniversalPlanAtoms = len(up.viewFacts)
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// RewriteOne returns the best (smallest) rewriting, or ErrNoRewriting.
func RewriteOne(q pivot.CQ, views []View, opts Options) (pivot.CQ, *Result, error) {
	res, err := Rewrite(q, views, opts)
	if err != nil {
		return pivot.CQ{}, nil, err
	}
	if len(res.Rewritings) == 0 {
		return pivot.CQ{}, res, ErrNoRewriting
	}
	return res.Rewritings[0], res, nil
}

// universalPlan is the result of the forward chase, prepared for backchase:
// the view facts with their provenance over seed groups, and the head terms
// of the (possibly EGD-renamed) query.
type universalPlan struct {
	viewFacts []pivot.Atom
	// coverage[i] is the set of seed groups accounted for by viewFacts[i].
	coverage []chase.Bitset
	// allGroups has one bit per distinct surviving seed fact.
	allGroups chase.Bitset
	// head is the rewriting head: the query head with terms resolved
	// through EGD renaming.
	head pivot.Atom
}

// buildUniversalPlan extracts the view facts of the chased instance and maps
// per-seed provenance bits onto "groups" (seeds that EGDs merged into the
// same fact count once).
func buildUniversalPlan(q pivot.CQ, frozen pivot.Subst, seedCount int, fwd *chase.Result, viewPreds map[string]bool) *universalPlan {
	// Group seeds by the fact they became after EGD renaming.
	groupOf := make([]int, seedCount)
	groups := map[string]int{}
	for i := 0; i < seedCount && i < len(q.Body); i++ {
		resolved := resolveAtom(frozen.ApplyAtom(q.Body[i]), fwd)
		g, ok := groups[resolved.Key()]
		if !ok {
			g = len(groups)
			groups[resolved.Key()] = g
		}
		groupOf[i] = g
	}
	// Seeds beyond q.Body (duplicate body atoms deduped by Freeze) cannot
	// occur: Freeze adds at most one fact per body atom, so seedCount ≤
	// len(q.Body). Guard anyway.
	up := &universalPlan{}
	for g := 0; g < len(groups); g++ {
		up.allGroups.Set(g)
	}
	inst := fwd.Instance
	for i := 0; i < inst.Size(); i++ {
		f, live := inst.Fact(i)
		if !live || !viewPreds[f.Pred] {
			continue
		}
		var cov chase.Bitset
		if p := fwd.ProvOf(f); p != nil {
			for _, alt := range p.Alts {
				alt.ForEach(func(seed int) {
					if seed < len(groupOf) {
						cov.Set(groupOf[seed])
					}
				})
			}
		}
		up.viewFacts = append(up.viewFacts, f)
		up.coverage = append(up.coverage, cov)
	}
	up.head = resolveAtom(frozen.ApplyAtom(q.Head), fwd)
	return up
}

func resolveAtom(a pivot.Atom, res *chase.Result) pivot.Atom {
	args := make([]pivot.Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = res.Resolve(t)
	}
	return pivot.Atom{Pred: a.Pred, Args: args}
}

// search carries the shared backchase machinery.
type search struct {
	q        pivot.CQ
	up       *universalPlan
	verifyCS *chase.Prepared
	opts     Options
	stats    Stats

	// useful maps DFS positions to view-fact indices (set by pacb).
	useful   []int
	accepted []string // rewriting keys of accepted rewritings (for subset pruning)
}

// candidate assembles the rewriting CQ for a set of view-fact indices and
// runs cheap rejection tests. It returns the query and whether it is worth
// verifying.
func (s *search) candidate(factIdx []int) (pivot.CQ, bool) {
	body := make([]pivot.Atom, 0, len(factIdx))
	for _, i := range factIdx {
		body = append(body, nullsToVars(s.up.viewFacts[i]))
	}
	head := nullsToVars(s.up.head)
	cq := pivot.CQ{Head: head, Body: body}
	if cq.Validate() != nil {
		return pivot.CQ{}, false // head variable not exposed by the views
	}
	if s.opts.AccessPatterns != nil {
		preBound := map[pivot.Var]bool{}
		for _, pos := range s.opts.BoundHeadPositions {
			if pos >= 0 && pos < len(head.Args) {
				if v, ok := head.Args[pos].(pivot.Var); ok {
					preBound[v] = true
				}
			}
		}
		if _, ok := FeasibleBound(body, s.opts.AccessPatterns, preBound); !ok {
			return pivot.CQ{}, false
		}
	}
	return cq, true
}

// verify runs the backchase equivalence check: candidate ⊑ q under the full
// constraint set. (q ⊑ candidate holds by construction: every candidate atom
// is a fact of q's chased canonical database.)
func (s *search) verify(cand pivot.CQ) (bool, error) {
	s.stats.VerificationChases++
	return s.verifyQuiet(cand)
}

// verifyQuiet is verify without the stats update — safe to call from the
// parallel verification workers, which only read the search state.
func (s *search) verifyQuiet(cand pivot.CQ) (bool, error) {
	ok, err := s.verifyCS.ContainedIn(cand, s.q, s.opts.Chase)
	if err != nil {
		if errors.Is(err, chase.ErrBudget) {
			return false, nil // treat as unverifiable, skip candidate
		}
		return false, err
	}
	return ok, nil
}

// subsumedByAccepted reports whether the fact set is a superset of an
// accepted rewriting (hence not minimal).
func (s *search) subsumedByAccepted(body []pivot.Atom) bool {
	keys := map[string]bool{}
	for _, a := range body {
		keys[a.Key()] = true
	}
	for _, acc := range s.accepted {
		if allKeysIn(acc, keys) {
			return true
		}
	}
	return false
}

func allKeysIn(joined string, keys map[string]bool) bool {
	start := 0
	for i := 0; i <= len(joined); i++ {
		if i == len(joined) || joined[i] == '|' {
			if !keys[joined[start:i]] {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// nullsToVars rewrites an atom's labeled nulls into variables named after
// their labels, turning instance facts back into query atoms.
func nullsToVars(a pivot.Atom) pivot.Atom {
	args := make([]pivot.Term, len(a.Args))
	for i, t := range a.Args {
		if n, ok := t.(pivot.Null); ok {
			args[i] = pivot.Var("n" + strconv.FormatInt(int64(n), 10))
		} else {
			args[i] = t
		}
	}
	return pivot.Atom{Pred: a.Pred, Args: args}
}
