package rewrite

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chase"
	"repro/internal/pivot"
)

func atom(pred string, args ...pivot.Term) pivot.Atom { return pivot.NewAtom(pred, args...) }
func v(name string) pivot.Var                         { return pivot.Var(name) }

// vQ builds a view named name with the given head vars and body.
func vQ(name string, headVars []pivot.Var, body ...pivot.Atom) View {
	args := make([]pivot.Term, len(headVars))
	for i, hv := range headVars {
		args[i] = hv
	}
	return NewView(name, pivot.NewCQ(pivot.NewAtom(name, args...), body...))
}

func TestViewConstraints(t *testing.T) {
	view := vQ("V", []pivot.Var{"x", "y"},
		atom("R", v("x"), v("z")), atom("S", v("z"), v("y")))
	f := view.ForwardTGD()
	if !f.IsFull() {
		t.Error("forward TGD must be full")
	}
	if len(f.Body) != 2 || len(f.Head) != 1 || f.Head[0].Pred != "V" {
		t.Errorf("forward TGD malformed: %v", f)
	}
	b := view.BackwardTGD()
	if b.IsFull() {
		t.Error("backward TGD must have existential z")
	}
	if len(b.Body) != 1 || b.Body[0].Pred != "V" || len(b.Head) != 2 {
		t.Errorf("backward TGD malformed: %v", b)
	}
	if err := view.Validate(); err != nil {
		t.Errorf("valid view rejected: %v", err)
	}
}

func TestRewriteIdentityView(t *testing.T) {
	// View V = R; query over R must rewrite to V.
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	for _, alg := range []Algorithm{PACB, NaiveCB} {
		res, err := Rewrite(q, []View{view}, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Rewritings) != 1 {
			t.Fatalf("%v: got %d rewritings, want 1: %v", alg, len(res.Rewritings), res.Rewritings)
		}
		r := res.Rewritings[0]
		if len(r.Body) != 1 || r.Body[0].Pred != "V" {
			t.Errorf("%v: rewriting = %v", alg, r)
		}
	}
}

func TestRewriteJoinOfTwoViews(t *testing.T) {
	// V1 = R, V2 = S; query R ⋈ S rewrites to V1 ⋈ V2.
	v1 := vQ("V1", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	v2 := vQ("V2", []pivot.Var{"y", "z"}, atom("S", v("y"), v("z")))
	q := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("R", v("a"), v("b")), atom("S", v("b"), v("c")))
	for _, alg := range []Algorithm{PACB, NaiveCB} {
		res, err := Rewrite(q, []View{v1, v2}, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Rewritings) != 1 {
			t.Fatalf("%v: got %d rewritings: %v", alg, len(res.Rewritings), res.Rewritings)
		}
		r := res.Rewritings[0]
		if len(r.Body) != 2 {
			t.Errorf("%v: rewriting = %v", alg, r)
		}
		preds := map[string]bool{}
		for _, a := range r.Body {
			preds[a.Pred] = true
		}
		if !preds["V1"] || !preds["V2"] {
			t.Errorf("%v: rewriting misses a view: %v", alg, r)
		}
	}
}

func TestRewritePrefersMaterializedJoin(t *testing.T) {
	// VJ materializes R ⋈ S; singleton views also exist. Minimal rewriting
	// uses VJ alone; the 2-view rewriting is also equivalent and minimal
	// w.r.t. set inclusion, so both may be reported — VJ must come first
	// (fewest atoms).
	vr := vQ("VR", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	vs := vQ("VS", []pivot.Var{"y", "z"}, atom("S", v("y"), v("z")))
	vj := vQ("VJ", []pivot.Var{"x", "z"},
		atom("R", v("x"), v("y")), atom("S", v("y"), v("z")))
	q := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("R", v("a"), v("b")), atom("S", v("b"), v("c")))
	res, err := Rewrite(q, []View{vr, vs, vj}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) == 0 {
		t.Fatal("no rewriting found")
	}
	first := res.Rewritings[0]
	if len(first.Body) != 1 || first.Body[0].Pred != "VJ" {
		t.Errorf("smallest rewriting = %v, want single VJ atom", first)
	}
}

func TestRewriteNoRewriting(t *testing.T) {
	// View over T cannot answer a query over R.
	view := vQ("V", []pivot.Var{"x"}, atom("T", v("x")))
	q := pivot.NewCQ(atom("Q", v("a")), atom("R", v("a"), v("b")))
	res, err := Rewrite(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("unexpected rewritings: %v", res.Rewritings)
	}
	_, _, err = RewriteOne(q, []View{view}, Options{})
	if !errors.Is(err, ErrNoRewriting) {
		t.Errorf("RewriteOne err = %v, want ErrNoRewriting", err)
	}
}

func TestRewriteRejectsLossyView(t *testing.T) {
	// View projects away the join variable: V(x) = R(x,y) — cannot answer
	// Q(x,y) :- R(x,y).
	view := vQ("V", []pivot.Var{"x"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	res, err := Rewrite(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("lossy view accepted: %v", res.Rewritings)
	}
}

func TestRewriteRejectsNonEquivalentJoinView(t *testing.T) {
	// VJ = R ⋈ S is NOT equivalent to a query over R alone (the join loses
	// R-tuples with no S partner).
	vj := vQ("VJ", []pivot.Var{"x", "y"},
		atom("R", v("x"), v("y")), atom("S", v("y"), v("z")))
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	res, err := Rewrite(q, []View{vj}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("non-equivalent rewriting accepted: %v", res.Rewritings)
	}
}

func TestRewriteWithConstantSelection(t *testing.T) {
	// View keeps the selection column; query selects a constant.
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a")), atom("R", v("a"), pivot.CStr("gold")))
	r, _, err := RewriteOne(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 1 || r.Body[0].Pred != "V" {
		t.Fatalf("rewriting = %v", r)
	}
	if !pivot.SameTerm(r.Body[0].Args[1], pivot.CStr("gold")) {
		t.Errorf("constant not pushed into view atom: %v", r)
	}
}

func TestRewriteConstantInViewDef(t *testing.T) {
	// View pre-selects gold rows; query asks exactly for gold rows.
	view := NewView("VG", pivot.NewCQ(
		atom("VG", v("x")),
		atom("R", v("x"), pivot.CStr("gold"))))
	q := pivot.NewCQ(atom("Q", v("a")), atom("R", v("a"), pivot.CStr("gold")))
	r, _, err := RewriteOne(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 1 || r.Body[0].Pred != "VG" {
		t.Errorf("rewriting = %v", r)
	}
	// But a query for silver rows must not use the gold view.
	qs := pivot.NewCQ(atom("Q", v("a")), atom("R", v("a"), pivot.CStr("silver")))
	res, err := Rewrite(qs, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("silver query answered by gold view: %v", res.Rewritings)
	}
}

func TestRewriteUnderSchemaConstraints(t *testing.T) {
	// Schema: Child ⊆ Desc. View stores Desc; query over Child has NO exact
	// rewriting using the Desc view (Desc ⊋ Child in general), while a query
	// over Desc does.
	schema := pivot.Constraints{TGDs: []pivot.TGD{
		pivot.InclusionTGD("c⊆d", "Child", 2, []int{0, 1}, "Desc", 2, []int{0, 1}),
	}}
	vd := vQ("VD", []pivot.Var{"x", "y"}, atom("Desc", v("x"), v("y")))
	qChild := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("Child", v("a"), v("b")))
	res, err := Rewrite(qChild, []View{vd}, Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("Child query must not be answerable from Desc view: %v", res.Rewritings)
	}
	qDesc := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("Desc", v("a"), v("b")))
	r, _, err := RewriteOne(qDesc, []View{vd}, Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if r.Body[0].Pred != "VD" {
		t.Errorf("rewriting = %v", r)
	}
}

func TestRewriteChildViewAnswersDescQueryUnderClosure(t *testing.T) {
	// The converse: a view storing Child can answer a Child query, and with
	// the inclusion Child⊆Desc a Desc query CANNOT be answered from Child
	// (Child ⊆ Desc is not equality).
	schema := pivot.Constraints{TGDs: []pivot.TGD{
		pivot.InclusionTGD("c⊆d", "Child", 2, []int{0, 1}, "Desc", 2, []int{0, 1}),
	}}
	vc := vQ("VC", []pivot.Var{"x", "y"}, atom("Child", v("x"), v("y")))
	qDesc := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("Desc", v("a"), v("b")))
	res, err := Rewrite(qDesc, []View{vc}, Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("Desc query wrongly answered from Child view: %v", res.Rewritings)
	}
}

func TestRewriteMinimizesQueryFirst(t *testing.T) {
	// Query has a redundant atom; the rewriting should not be forced to
	// cover it with an extra view atom.
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a")),
		atom("R", v("a"), v("b")),
		atom("R", v("a"), v("b2"))) // redundant
	r, _, err := RewriteOne(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 1 {
		t.Errorf("rewriting = %v, want single V atom", r)
	}
}

func TestRewriteSelfJoin(t *testing.T) {
	// Query is a genuine self-join (path of length 2, both ends out).
	view := vQ("V", []pivot.Var{"x", "y"}, atom("E", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("E", v("a"), v("b")), atom("E", v("b"), v("c")))
	r, _, err := RewriteOne(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 {
		t.Fatalf("rewriting = %v, want two V atoms", r)
	}
	// The two V atoms must chain on the middle variable.
	if !pivot.SameTerm(r.Body[0].Args[1], r.Body[1].Args[0]) &&
		!pivot.SameTerm(r.Body[1].Args[1], r.Body[0].Args[0]) {
		t.Errorf("self-join chain broken: %v", r)
	}
}

func TestRewriteAgreesAcrossAlgorithms(t *testing.T) {
	// PACB and naive C&B must accept exactly the same minimal rewritings.
	vs := []View{
		vQ("V1", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y"))),
		vQ("V2", []pivot.Var{"y", "z"}, atom("S", v("y"), v("z"))),
		vQ("V3", []pivot.Var{"x", "z"},
			atom("R", v("x"), v("y")), atom("S", v("y"), v("z"))),
	}
	q := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("R", v("a"), v("b")), atom("S", v("b"), v("c")))
	resP, err := Rewrite(q, vs, Options{Algorithm: PACB})
	if err != nil {
		t.Fatal(err)
	}
	resN, err := Rewrite(q, vs, Options{Algorithm: NaiveCB})
	if err != nil {
		t.Fatal(err)
	}
	keysOf := func(rs []pivot.CQ) map[string]bool {
		m := map[string]bool{}
		for _, r := range rs {
			m[rewritingKey(r.Body)] = true
		}
		return m
	}
	kp, kn := keysOf(resP.Rewritings), keysOf(resN.Rewritings)
	for k := range kp {
		if !kn[k] {
			t.Errorf("PACB found %s, naive did not", k)
		}
	}
	for k := range kn {
		if !kp[k] {
			t.Errorf("naive found %s, PACB did not", k)
		}
	}
	if resP.Stats.VerificationChases > resN.Stats.VerificationChases {
		t.Errorf("PACB ran more verification chases (%d) than naive (%d)",
			resP.Stats.VerificationChases, resN.Stats.VerificationChases)
	}
}

func TestRewriteMaxRewritings(t *testing.T) {
	vs := []View{
		vQ("V1", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y"))),
		vQ("V2", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y"))), // duplicate view
	}
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	res, err := Rewrite(q, vs, Options{MaxRewritings: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 1 {
		t.Errorf("got %d rewritings, want 1", len(res.Rewritings))
	}
}

func TestRewriteCandidateBudget(t *testing.T) {
	// Naive C&B over many redundant views blows the candidate budget.
	var vs []View
	for i := 0; i < 10; i++ {
		vs = append(vs, vQ("W"+string(rune('0'+i)), []pivot.Var{"x", "y"}, atom("R", v("x"), v("y"))))
	}
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	_, err := Rewrite(q, vs, Options{Algorithm: NaiveCB, MaxCandidates: 5, MaxRewritings: 0})
	if !errors.Is(err, ErrSearchBudget) {
		t.Errorf("err = %v, want ErrSearchBudget", err)
	}
}

func TestFeasible(t *testing.T) {
	patterns := map[string]AccessPattern{"KV": "bf"}
	// KV(k,v) with k bound by a constant: feasible.
	atoms := []pivot.Atom{atom("KV", pivot.CStr("k1"), v("val"))}
	if _, ok := Feasible(atoms, patterns); !ok {
		t.Error("constant-bound key must be feasible")
	}
	// KV(k,v) with free k and nothing to bind it: infeasible.
	atoms = []pivot.Atom{atom("KV", v("k"), v("val"))}
	if _, ok := Feasible(atoms, patterns); ok {
		t.Error("free key with no producer must be infeasible")
	}
	// R(x) then KV(x,v): feasible in that order even if listed reversed.
	atoms = []pivot.Atom{atom("KV", v("x"), v("val")), atom("R", v("x"))}
	order, ok := Feasible(atoms, patterns)
	if !ok {
		t.Fatal("orderable atoms reported infeasible")
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v, want [1 0]", order)
	}
	// Mutual deadlock: KV1(a,b) needs a, KV2(b,a) needs b.
	patterns2 := map[string]AccessPattern{"K1": "bf", "K2": "bf"}
	atoms = []pivot.Atom{atom("K1", v("a"), v("b")), atom("K2", v("b"), v("a"))}
	if _, ok := Feasible(atoms, patterns2); ok {
		t.Error("circular binding must be infeasible")
	}
}

func TestRewriteRespectsAccessPatterns(t *testing.T) {
	// VKV is a key-value view over R keyed by the first column. A query
	// binding the key is answerable; a query scanning R is not (the KV view
	// cannot be scanned).
	vkv := vQ("VKV", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	ap := map[string]AccessPattern{"VKV": "bf"}
	qBound := pivot.NewCQ(atom("Q", v("b")), atom("R", pivot.CStr("k7"), v("b")))
	r, _, err := RewriteOne(qBound, []View{vkv}, Options{AccessPatterns: ap})
	if err != nil {
		t.Fatalf("key-bound query should rewrite: %v", err)
	}
	if r.Body[0].Pred != "VKV" {
		t.Errorf("rewriting = %v", r)
	}
	qScan := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	res, err := Rewrite(qScan, []View{vkv}, Options{AccessPatterns: ap})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 0 {
		t.Errorf("scan query must be infeasible on a KV view: %v", res.Rewritings)
	}
}

func TestRewriteBindJoinFeasibleChain(t *testing.T) {
	// Two fragments: VR (scannable) produces the key consumed by VKV.
	vr := vQ("VR", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	vkv := vQ("VKV", []pivot.Var{"y", "z"}, atom("S", v("y"), v("z")))
	ap := map[string]AccessPattern{"VKV": "bf"}
	q := pivot.NewCQ(atom("Q", v("a"), v("c")),
		atom("R", v("a"), v("b")), atom("S", v("b"), v("c")))
	r, _, err := RewriteOne(q, []View{vr, vkv}, Options{AccessPatterns: ap})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 2 {
		t.Fatalf("rewriting = %v", r)
	}
	order, ok := Feasible(r.Body, ap)
	if !ok {
		t.Fatal("produced rewriting is infeasible")
	}
	first := r.Body[order[0]]
	if first.Pred != "VR" {
		t.Errorf("feasible order must start with the scannable view, got %v", first)
	}
}

func TestRewriteHeadConstant(t *testing.T) {
	// Head contains a constant.
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), pivot.CStr("tag")), atom("R", v("a"), v("b")))
	r, _, err := RewriteOne(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pivot.SameTerm(r.Head.Args[1], pivot.CStr("tag")) {
		t.Errorf("head constant lost: %v", r)
	}
}

func TestRewriteStatsPopulated(t *testing.T) {
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	res, err := Rewrite(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UniversalPlanAtoms < 1 || res.Stats.VerificationChases < 1 || res.Stats.Duration <= 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestAccessPatternValidate(t *testing.T) {
	if err := AccessPattern("bf").Validate(2); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	if err := AccessPattern("bf").Validate(3); err == nil {
		t.Error("wrong-length pattern accepted")
	}
	if err := AccessPattern("bx").Validate(2); err == nil {
		t.Error("bad letter accepted")
	}
	if err := AccessPattern("").Validate(5); err != nil {
		t.Error("empty pattern must be valid (all-free)")
	}
	if got := AccessPattern("bfb").BoundPositions(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("BoundPositions = %v", got)
	}
}

// Exhaustive cross-check on small random-ish cases: every rewriting found by
// PACB, when expanded (views replaced by their definitions), is equivalent
// to the original query under no constraints.
func TestRewriteExpansionEquivalence(t *testing.T) {
	vs := []View{
		vQ("A", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y"))),
		vQ("B", []pivot.Var{"x", "z"},
			atom("R", v("x"), v("y")), atom("S", v("y"), v("z"))),
		vQ("C", []pivot.Var{"y", "z"}, atom("S", v("y"), v("z"))),
	}
	queries := []pivot.CQ{
		pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b"))),
		pivot.NewCQ(atom("Q", v("a"), v("c")),
			atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))),
		pivot.NewCQ(atom("Q", v("a")),
			atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))),
	}
	defs := map[string]View{}
	for _, view := range vs {
		defs[view.Name] = view
	}
	for qi, q := range queries {
		res, err := Rewrite(q, vs, Options{})
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		if len(res.Rewritings) == 0 {
			t.Errorf("q%d: no rewriting", qi)
			continue
		}
		for _, r := range res.Rewritings {
			exp := expand(r, defs)
			if !pivot.Equivalent(exp, q) {
				t.Errorf("q%d: expansion of %v = %v is not equivalent to %v", qi, r, exp, q)
			}
		}
	}
}

// expand replaces each view atom by the view's definition body, renaming
// per-occurrence and unifying head terms with the atom's arguments.
func expand(r pivot.CQ, defs map[string]View) pivot.CQ {
	var body []pivot.Atom
	for i, a := range r.Body {
		view := defs[a.Pred]
		d := view.Def.Rename(view.Name + "_" + string(rune('0'+i)) + "_")
		s := pivot.NewSubst()
		for j, ht := range d.Head.Args {
			hv := ht.(pivot.Var)
			s[hv] = a.Args[j]
		}
		body = append(body, s.ApplyAtoms(d.Body)...)
	}
	return pivot.CQ{Head: r.Head, Body: body}
}

func TestVerifyTermination(t *testing.T) {
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("a"), v("b")), atom("R", v("a"), v("b")))
	// Well-behaved constraints pass.
	if _, err := Rewrite(q, []View{view}, Options{VerifyTermination: true}); err != nil {
		t.Fatalf("weakly acyclic set rejected: %v", err)
	}
	// A value-inventing recursive schema constraint is rejected up front.
	badSchema := pivot.Constraints{TGDs: []pivot.TGD{
		pivot.NewTGD("grow",
			[]pivot.Atom{atom("R", v("x"), v("y"))},
			[]pivot.Atom{atom("R", v("y"), v("z"))}),
	}}
	_, err := Rewrite(q, []View{view}, Options{Schema: badSchema, VerifyTermination: true})
	if !errors.Is(err, ErrNotWeaklyAcyclic) {
		t.Errorf("err = %v, want ErrNotWeaklyAcyclic", err)
	}
	// Without the flag, a (small) chase budget still protects: no hang.
	_, err = Rewrite(q, []View{view}, Options{
		Schema: badSchema,
		Chase:  chase.Options{MaxSteps: 100, MaxFacts: 500},
	})
	if !errors.Is(err, chase.ErrBudget) {
		t.Errorf("err = %v, want chase.ErrBudget", err)
	}
}

func TestRewriteExploitsKeyEGD(t *testing.T) {
	// Under a key on R[0], the self-join R(x,y) ∧ R(x,z) collapses (y=z):
	// one view atom suffices. Without the key, two atoms are required.
	key := pivot.Constraints{EGDs: pivot.KeyEGDs("R", 2, 0)}
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("x"), v("y"), v("z")),
		atom("R", v("x"), v("y")),
		atom("R", v("x"), v("z")))

	withKey, err := Rewrite(q, []View{view}, Options{Schema: key})
	if err != nil {
		t.Fatal(err)
	}
	if len(withKey.Rewritings) == 0 {
		t.Fatal("no rewriting under key")
	}
	if got := len(withKey.Rewritings[0].Body); got != 1 {
		t.Errorf("smallest rewriting under key uses %d atoms, want 1: %v",
			got, withKey.Rewritings[0])
	}

	without, err := Rewrite(q, []View{view}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Rewritings) == 0 {
		t.Fatal("no rewriting without key")
	}
	if got := len(without.Rewritings[0].Body); got != 2 {
		t.Errorf("smallest rewriting without key uses %d atoms, want 2: %v",
			got, without.Rewritings[0])
	}
}

func TestRewriteKeyEGDPropagatesHeadEquality(t *testing.T) {
	// Under the key, y and z in the head must collapse to one variable.
	key := pivot.Constraints{EGDs: pivot.KeyEGDs("R", 2, 0)}
	view := vQ("V", []pivot.Var{"x", "y"}, atom("R", v("x"), v("y")))
	q := pivot.NewCQ(atom("Q", v("y"), v("z")),
		atom("R", pivot.CStr("k"), v("y")),
		atom("R", pivot.CStr("k"), v("z")))
	r, _, err := RewriteOne(q, []View{view}, Options{Schema: key})
	if err != nil {
		t.Fatal(err)
	}
	if !pivot.SameTerm(r.Head.Args[0], r.Head.Args[1]) {
		t.Errorf("head positions not unified under key: %v", r)
	}
}

// Property: when Feasible returns an order, replaying the order really
// binds every 'b' position before it is consumed.
func TestFeasibleOrderSoundQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(5))}
	patterns := map[string]AccessPattern{"K": "bf", "L": "bbf"}
	f := func(shape [4]uint8) bool {
		// Build 4 atoms over K(bf), L(bbf), R(ff) with variables from a
		// small pool, plus occasional constants.
		preds := []string{"K", "L", "R"}
		pool := []pivot.Var{"a", "b", "c"}
		var atoms []pivot.Atom
		for i, s := range shape {
			pred := preds[int(s)%3]
			arity := 2
			if pred == "L" {
				arity = 3
			}
			args := make([]pivot.Term, arity)
			for j := range args {
				if (int(s)+i+j)%5 == 0 {
					args[j] = pivot.CInt(int64(j))
				} else {
					args[j] = pool[(int(s)+i+j)%len(pool)]
				}
			}
			atoms = append(atoms, pivot.Atom{Pred: pred, Args: args})
		}
		order, ok := Feasible(atoms, patterns)
		if !ok {
			return true // nothing to verify
		}
		bound := map[pivot.Var]bool{}
		for _, ai := range order {
			a := atoms[ai]
			for _, pos := range patterns[a.Pred].BoundPositions() {
				if vv, isVar := a.Args[pos].(pivot.Var); isVar && !bound[vv] {
					return false // consumed before produced
				}
			}
			for _, vv := range a.Vars() {
				bound[vv] = true
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
