package rewrite

import (
	"sort"

	"repro/internal/chase"
	"repro/internal/pivot"
)

// pacb enumerates backchase candidates restricted to minimal covers of the
// query atoms by view-atom provenance, verifying each with a chase. This is
// the provenance-aware pruning of Ileana et al.: instead of 2^n subqueries,
// only subsets whose provenance accounts for every query atom are examined.
func (s *search) pacb() ([]pivot.CQ, error) {
	up := s.up
	if up.allGroups.Empty() {
		return nil, nil
	}
	// Facts that cover nothing can never appear in a minimal cover.
	useful := make([]int, 0, len(up.viewFacts))
	for i, cov := range up.coverage {
		if !cov.Empty() {
			useful = append(useful, i)
		}
	}
	// Order by descending coverage so small covers are found early.
	sort.SliceStable(useful, func(a, b int) bool {
		return up.coverage[useful[a]].Count() > up.coverage[useful[b]].Count()
	})
	s.useful = useful
	// byGroup[g] lists facts (positions in useful) covering group g.
	nGroups := 0
	up.allGroups.ForEach(func(int) { nGroups++ })
	byGroup := make([][]int, nGroups)
	for pos, fi := range useful {
		up.coverage[fi].ForEach(func(g int) {
			byGroup[g] = append(byGroup[g], pos)
		})
	}

	var out []pivot.CQ
	seen := map[string]bool{}
	banned := make([]bool, len(useful))
	var chosen []int
	var budgetErr error

	var dfs func(covered chase.Bitset) bool // returns false to abort
	dfs = func(covered chase.Bitset) bool {
		if s.opts.MaxRewritings > 0 && len(out) >= s.opts.MaxRewritings {
			return false
		}
		// First uncovered group.
		first := -1
		for g := 0; g < nGroups; g++ {
			if up.allGroups.Has(g) && !covered.Has(g) {
				first = g
				break
			}
		}
		if first == -1 {
			// Complete cover: emit if irredundant, unseen and verified.
			s.stats.Candidates++
			if s.stats.Candidates > s.opts.MaxCandidates {
				budgetErr = ErrSearchBudget
				return false
			}
			if !s.irredundant(chosen) {
				return true
			}
			factIdx := make([]int, len(chosen))
			for i, pos := range chosen {
				factIdx[i] = useful[pos]
			}
			cand, ok := s.candidate(factIdx)
			if !ok {
				return true
			}
			key := rewritingKey(cand.Body)
			if seen[key] || s.subsumedByAccepted(cand.Body) {
				return true
			}
			seen[key] = true
			verified, err := s.verify(cand)
			if err != nil {
				budgetErr = err
				return false
			}
			if verified {
				out = append(out, cand)
				s.accepted = append(s.accepted, key)
			}
			return true
		}
		// Branch on every fact covering the first uncovered group; ban
		// earlier branches in the subtree to avoid duplicate covers.
		var localBans []int
		defer func() {
			for _, p := range localBans {
				banned[p] = false
			}
		}()
		for _, pos := range byGroup[first] {
			if banned[pos] {
				continue
			}
			chosen = append(chosen, pos)
			cont := dfs(covered.Union(up.coverage[useful[pos]]))
			chosen = chosen[:len(chosen)-1]
			if !cont {
				return false
			}
			banned[pos] = true
			localBans = append(localBans, pos)
		}
		return true
	}
	dfs(chase.NewBitset(nGroups))
	if budgetErr != nil {
		return out, budgetErr
	}
	return out, nil
}

// irredundant reports whether dropping any chosen fact leaves some group
// uncovered (i.e. the cover is minimal w.r.t. set inclusion). chosenPos
// holds positions into s.useful.
func (s *search) irredundant(chosenPos []int) bool {
	for skip := range chosenPos {
		var cov chase.Bitset
		for j, pos := range chosenPos {
			if j == skip {
				continue
			}
			cov.UnionWith(s.up.coverage[s.useful[pos]])
		}
		if s.up.allGroups.SubsetOf(cov) {
			return false
		}
	}
	return true
}

// naive enumerates every subquery of the universal plan smallest-first,
// verifying each with a chase — the classical C&B baseline whose cost PACB
// avoids. Supersets of accepted rewritings are skipped (they cannot be
// minimal), as are duplicates.
func (s *search) naive() ([]pivot.CQ, error) {
	n := len(s.up.viewFacts)
	var out []pivot.CQ
	var budgetErr error
	idx := make([]int, 0, n)

	var emit func() bool
	emit = func() bool {
		s.stats.Candidates++
		if s.stats.Candidates > s.opts.MaxCandidates {
			budgetErr = ErrSearchBudget
			return false
		}
		cand, ok := s.candidate(idx)
		if !ok {
			return true
		}
		if s.subsumedByAccepted(cand.Body) {
			return true
		}
		verified, err := s.verify(cand)
		if err != nil {
			budgetErr = err
			return false
		}
		if verified {
			out = append(out, cand)
			s.accepted = append(s.accepted, rewritingKey(cand.Body))
		}
		return !(s.opts.MaxRewritings > 0 && len(out) >= s.opts.MaxRewritings)
	}

	var combos func(start, k int) bool
	combos = func(start, k int) bool {
		if k == 0 {
			return emit()
		}
		for i := start; i <= n-k; i++ {
			idx = append(idx, i)
			cont := combos(i+1, k-1)
			idx = idx[:len(idx)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	for size := 1; size <= n; size++ {
		if !combos(0, size) {
			break
		}
	}
	if budgetErr != nil {
		return out, budgetErr
	}
	return out, nil
}
