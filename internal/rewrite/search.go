package rewrite

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chase"
	"repro/internal/pivot"
)

// pacb enumerates backchase candidates restricted to minimal covers of the
// query atoms by view-atom provenance, verifying each with a chase. This is
// the provenance-aware pruning of Ileana et al.: instead of 2^n subqueries,
// only subsets whose provenance accounts for every query atom are examined.
//
// Cover enumeration is cheap and stays sequential; the expensive
// verification chases run on a worker pool (Options.Workers, default
// GOMAXPROCS). Candidates are verified in batches and their results applied
// in enumeration order, so the returned rewriting set is identical to the
// serial one regardless of worker count.
func (s *search) pacb() ([]pivot.CQ, error) {
	up := s.up
	if up.allGroups.Empty() {
		return nil, nil
	}
	// Facts that cover nothing can never appear in a minimal cover.
	useful := make([]int, 0, len(up.viewFacts))
	for i, cov := range up.coverage {
		if !cov.Empty() {
			useful = append(useful, i)
		}
	}
	// Order by descending coverage so small covers are found early.
	sort.SliceStable(useful, func(a, b int) bool {
		return up.coverage[useful[a]].Count() > up.coverage[useful[b]].Count()
	})
	s.useful = useful
	// byGroup[g] lists facts (positions in useful) covering group g.
	nGroups := 0
	up.allGroups.ForEach(func(int) { nGroups++ })
	byGroup := make([][]int, nGroups)
	for pos, fi := range useful {
		up.coverage[fi].ForEach(func(g int) {
			byGroup[g] = append(byGroup[g], pos)
		})
	}

	coll := newVerifyCollector(s)
	seen := map[string]bool{}
	banned := make([]bool, len(useful))
	var chosen []int
	var budgetErr error

	var dfs func(covered chase.Bitset) bool // returns false to abort
	dfs = func(covered chase.Bitset) bool {
		if coll.full() {
			return false
		}
		// First uncovered group.
		first := -1
		for g := 0; g < nGroups; g++ {
			if up.allGroups.Has(g) && !covered.Has(g) {
				first = g
				break
			}
		}
		if first == -1 {
			// Complete cover: hand over if irredundant and unseen; the
			// collector verifies and accepts in enumeration order.
			s.stats.Candidates++
			if s.stats.Candidates > s.opts.MaxCandidates {
				budgetErr = ErrSearchBudget
				return false
			}
			if !s.irredundant(chosen) {
				return true
			}
			factIdx := make([]int, len(chosen))
			for i, pos := range chosen {
				factIdx[i] = useful[pos]
			}
			cand, ok := s.candidate(factIdx)
			if !ok {
				return true
			}
			key := rewritingKey(cand.Body)
			if seen[key] {
				return true
			}
			seen[key] = true
			return coll.add(cand, key)
		}
		// Branch on every fact covering the first uncovered group; ban
		// earlier branches in the subtree to avoid duplicate covers.
		var localBans []int
		defer func() {
			for _, p := range localBans {
				banned[p] = false
			}
		}()
		for _, pos := range byGroup[first] {
			if banned[pos] {
				continue
			}
			chosen = append(chosen, pos)
			cont := dfs(covered.Union(up.coverage[useful[pos]]))
			chosen = chosen[:len(chosen)-1]
			if !cont {
				return false
			}
			banned[pos] = true
			localBans = append(localBans, pos)
		}
		return true
	}
	dfs(chase.NewBitset(nGroups))
	coll.finish()
	if budgetErr != nil {
		return coll.out, budgetErr
	}
	return coll.out, coll.err
}

// verifyCandidate is one enumerated cover awaiting verification.
type verifyCandidate struct {
	cq  pivot.CQ
	key string
}

// verifyCollector batches candidate rewritings and verifies each batch on a
// worker pool, applying results strictly in enumeration order. With one
// worker the batch size is one and the behavior is step-for-step the serial
// algorithm; with more workers extra verification chases may run for
// candidates a serial search would have pruned by subsumption, but the
// accepted set (and its order) is identical.
type verifyCollector struct {
	s       *search
	workers int
	batch   []verifyCandidate
	out     []pivot.CQ
	err     error
	stop    bool
}

func newVerifyCollector(s *search) *verifyCollector {
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &verifyCollector{s: s, workers: workers}
}

// full reports whether the search should stop (rewriting quota reached or a
// verification error occurred).
func (c *verifyCollector) full() bool { return c.stop || c.err != nil }

// add enqueues a candidate, flushing a full batch. It returns false when
// enumeration should stop.
func (c *verifyCollector) add(cand pivot.CQ, key string) bool {
	c.batch = append(c.batch, verifyCandidate{cq: cand, key: key})
	if len(c.batch) >= c.workers {
		c.flush()
	}
	return !c.full()
}

// finish flushes the trailing partial batch.
func (c *verifyCollector) finish() {
	if !c.full() {
		c.flush()
	}
}

type verifyOutcome struct {
	ok  bool
	err error
}

func (c *verifyCollector) flush() {
	if len(c.batch) == 0 {
		return
	}
	// Drop candidates subsumed by rewritings accepted in earlier batches
	// before paying for their chases.
	kept := make([]verifyCandidate, 0, len(c.batch))
	for _, cand := range c.batch {
		if !c.s.subsumedByAccepted(cand.cq.Body) {
			kept = append(kept, cand)
		}
	}
	c.batch = c.batch[:0]
	if len(kept) == 0 {
		return
	}
	c.s.stats.VerificationChases += len(kept)
	results := make([]verifyOutcome, len(kept))
	if c.workers == 1 || len(kept) == 1 {
		for i, cand := range kept {
			results[i].ok, results[i].err = c.s.verifyQuiet(cand.cq)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		n := c.workers
		if len(kept) < n {
			n = len(kept)
		}
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(kept) {
						return
					}
					results[i].ok, results[i].err = c.s.verifyQuiet(kept[i].cq)
				}
			}()
		}
		wg.Wait()
	}
	// Apply in enumeration order: the first error wins, accepted rewritings
	// subsume later batch members, and the quota cuts deterministically.
	for i, cand := range kept {
		if results[i].err != nil {
			c.err = results[i].err
			return
		}
		if !results[i].ok {
			continue
		}
		if c.s.subsumedByAccepted(cand.cq.Body) {
			continue
		}
		c.out = append(c.out, cand.cq)
		c.s.accepted = append(c.s.accepted, cand.key)
		if c.s.opts.MaxRewritings > 0 && len(c.out) >= c.s.opts.MaxRewritings {
			c.stop = true
			return
		}
	}
}

// irredundant reports whether dropping any chosen fact leaves some group
// uncovered (i.e. the cover is minimal w.r.t. set inclusion). chosenPos
// holds positions into s.useful.
func (s *search) irredundant(chosenPos []int) bool {
	for skip := range chosenPos {
		var cov chase.Bitset
		for j, pos := range chosenPos {
			if j == skip {
				continue
			}
			cov.UnionWith(s.up.coverage[s.useful[pos]])
		}
		if s.up.allGroups.SubsetOf(cov) {
			return false
		}
	}
	return true
}

// naive enumerates every subquery of the universal plan smallest-first,
// verifying each with a chase — the classical C&B baseline whose cost PACB
// avoids. It is deliberately kept sequential: it is the yardstick the
// paper's E3 experiment measures PACB against. Supersets of accepted
// rewritings are skipped (they cannot be minimal), as are duplicates.
func (s *search) naive() ([]pivot.CQ, error) {
	n := len(s.up.viewFacts)
	var out []pivot.CQ
	var budgetErr error
	idx := make([]int, 0, n)

	var emit func() bool
	emit = func() bool {
		s.stats.Candidates++
		if s.stats.Candidates > s.opts.MaxCandidates {
			budgetErr = ErrSearchBudget
			return false
		}
		cand, ok := s.candidate(idx)
		if !ok {
			return true
		}
		if s.subsumedByAccepted(cand.Body) {
			return true
		}
		verified, err := s.verify(cand)
		if err != nil {
			budgetErr = err
			return false
		}
		if verified {
			out = append(out, cand)
			s.accepted = append(s.accepted, rewritingKey(cand.Body))
		}
		return !(s.opts.MaxRewritings > 0 && len(out) >= s.opts.MaxRewritings)
	}

	var combos func(start, k int) bool
	combos = func(start, k int) bool {
		if k == 0 {
			return emit()
		}
		for i := start; i <= n-k; i++ {
			idx = append(idx, i)
			cont := combos(i+1, k-1)
			idx = idx[:len(idx)-1]
			if !cont {
				return false
			}
		}
		return true
	}
	for size := 1; size <= n; size++ {
		if !combos(0, size) {
			break
		}
	}
	if budgetErr != nil {
		return out, budgetErr
	}
	return out, nil
}
