package rewrite

import (
	"fmt"
	"testing"

	"repro/internal/pivot"
)

// chainQueryWithViews builds the E3 configuration: a chain query of length k
// over R0..R(k-1) and v identity views per relation.
func chainQueryWithViews(k, vPerRel int) (pivot.CQ, []View) {
	var body []pivot.Atom
	for i := 0; i < k; i++ {
		body = append(body, pivot.NewAtom(fmt.Sprintf("R%d", i),
			pivot.Var(fmt.Sprintf("x%d", i)), pivot.Var(fmt.Sprintf("x%d", i+1))))
	}
	q := pivot.NewCQ(pivot.NewAtom("Q",
		pivot.Var("x0"), pivot.Var(fmt.Sprintf("x%d", k))), body...)
	var views []View
	for i := 0; i < k; i++ {
		for j := 0; j < vPerRel; j++ {
			name := fmt.Sprintf("V%d_%d", i, j)
			views = append(views, NewView(name, pivot.NewCQ(
				pivot.NewAtom(name, pivot.Var("a"), pivot.Var("b")),
				pivot.NewAtom(fmt.Sprintf("R%d", i), pivot.Var("a"), pivot.Var("b")))))
		}
	}
	return q, views
}

// TestParallelPACBDeterministic is the determinism guard: the parallel PACB
// search must return exactly the rewriting set of the serial path, in the
// same order, on the E3 k=4,v=3 configuration, for any worker count.
func TestParallelPACBDeterministic(t *testing.T) {
	q, views := chainQueryWithViews(4, 3)
	serial, err := Rewrite(q, views, Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial rewrite: %v", err)
	}
	if len(serial.Rewritings) == 0 {
		t.Fatal("serial search found no rewritings")
	}
	for _, workers := range []int{0, 2, 4, 8} {
		par, err := Rewrite(q, views, Options{Workers: workers})
		if err != nil {
			t.Fatalf("parallel rewrite (workers=%d): %v", workers, err)
		}
		if len(par.Rewritings) != len(serial.Rewritings) {
			t.Fatalf("workers=%d: %d rewritings, serial found %d",
				workers, len(par.Rewritings), len(serial.Rewritings))
		}
		for i := range serial.Rewritings {
			sk := rewritingKey(serial.Rewritings[i].Body)
			pk := rewritingKey(par.Rewritings[i].Body)
			if sk != pk {
				t.Errorf("workers=%d: rewriting %d differs:\nserial:   %v\nparallel: %v",
					workers, i, serial.Rewritings[i], par.Rewritings[i])
			}
		}
	}
}

// TestParallelPACBMaxRewritings checks that the rewriting quota cuts the
// parallel result deterministically at the same prefix as the serial one.
func TestParallelPACBMaxRewritings(t *testing.T) {
	q, views := chainQueryWithViews(3, 2)
	serial, err := Rewrite(q, views, Options{Workers: 1, MaxRewritings: 2})
	if err != nil {
		t.Fatalf("serial rewrite: %v", err)
	}
	par, err := Rewrite(q, views, Options{Workers: 4, MaxRewritings: 2})
	if err != nil {
		t.Fatalf("parallel rewrite: %v", err)
	}
	if len(serial.Rewritings) != 2 || len(par.Rewritings) != 2 {
		t.Fatalf("quota not honored: serial=%d parallel=%d", len(serial.Rewritings), len(par.Rewritings))
	}
	for i := range serial.Rewritings {
		if rewritingKey(serial.Rewritings[i].Body) != rewritingKey(par.Rewritings[i].Body) {
			t.Errorf("rewriting %d differs under quota", i)
		}
	}
}
