// Package rewrite implements view-based query rewriting under constraints —
// the heart of ESTOCADA. Fragments stored in the underlying data-management
// systems are described as materialized views over the application datasets
// (local-as-view); answering a query amounts to finding conjunctive
// rewritings over the view predicates that are equivalent to the query under
// the schema constraints.
//
// Two rewriting engines are provided, sharing the same verification logic:
//
//   - Naive Chase & Backchase: chase the query with the views' forward
//     constraints to build the universal plan, then enumerate subqueries of
//     the universal plan smallest-first, verifying each with a full chase.
//     This is the classical C&B, "long considered too inefficient to be of
//     practical relevance" (paper, §III).
//
//   - PACB (provenance-aware C&B, Ileana et al. SIGMOD 2014): the forward
//     chase annotates every derived view atom with the set of query atoms
//     that triggered it; backchase candidates are restricted to minimal
//     covers of the query atoms, slashing the number of verification chases
//     by orders of magnitude.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pivot"
)

// View describes one stored fragment as a materialized view: a named
// conjunctive query over the source schema. The head predicate of Def must
// equal Name; head arguments are the columns materialized by the fragment.
type View struct {
	Name string
	Def  pivot.CQ
}

// NewView builds a view, forcing the definition's head predicate to name.
func NewView(name string, def pivot.CQ) View {
	def.Head.Pred = name
	return View{Name: name, Def: def}
}

// Validate checks the view definition.
func (v View) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("rewrite: view with empty name")
	}
	if v.Def.Head.Pred != v.Name {
		return fmt.Errorf("rewrite: view %s head predicate %s mismatch", v.Name, v.Def.Head.Pred)
	}
	if err := v.Def.Validate(); err != nil {
		return fmt.Errorf("rewrite: view %s: %w", v.Name, err)
	}
	return nil
}

// ForwardTGD returns the constraint "definition body implies view tuple":
//
//	Body(x̄,ȳ) → V(x̄)
//
// It is full (no existentials), so the forward chase never invents nulls for
// view atoms.
func (v View) ForwardTGD() pivot.TGD {
	d := v.Def.Rename("f" + v.Name + "_")
	return pivot.TGD{
		Name: "fwd:" + v.Name,
		Body: d.Body,
		Head: []pivot.Atom{d.Head},
	}
}

// BackwardTGD returns the constraint "view tuple implies definition body":
//
//	V(x̄) → ∃ȳ Body(x̄,ȳ)
//
// Variables of the body absent from the head are existential.
func (v View) BackwardTGD() pivot.TGD {
	d := v.Def.Rename("b" + v.Name + "_")
	return pivot.TGD{
		Name: "bwd:" + v.Name,
		Body: []pivot.Atom{d.Head},
		Head: d.Body,
	}
}

// Constraints returns both directions for a set of views.
func Constraints(views []View) (forward, backward pivot.Constraints) {
	for _, v := range views {
		forward.TGDs = append(forward.TGDs, v.ForwardTGD())
		backward.TGDs = append(backward.TGDs, v.BackwardTGD())
	}
	return forward, backward
}

// AccessPattern is a per-predicate binding-pattern adornment: one letter per
// argument position, 'b' ("bound": a value must be supplied to access the
// source, as with a key-value store's key) or 'f' ("free": the source
// returns values for this position). The empty pattern means all-free.
type AccessPattern string

// Validate checks the adornment against an arity.
func (p AccessPattern) Validate(arity int) error {
	if p == "" {
		return nil
	}
	if len(p) != arity {
		return fmt.Errorf("rewrite: access pattern %q has length %d, want %d", p, len(p), arity)
	}
	for _, c := range p {
		if c != 'b' && c != 'f' {
			return fmt.Errorf("rewrite: access pattern %q contains %q (want 'b'/'f')", p, c)
		}
	}
	return nil
}

// BoundPositions returns the indices adorned 'b'.
func (p AccessPattern) BoundPositions() []int {
	var out []int
	for i, c := range p {
		if c == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// Feasible reports whether the atoms can be ordered such that every
// 'b'-adorned position of every atom is bound by a constant or by a variable
// produced by an earlier atom (a classic executability check for sources
// with access restrictions). Atoms whose predicate has no pattern are
// all-free. It returns a feasible ordering when one exists.
func Feasible(atoms []pivot.Atom, patterns map[string]AccessPattern) ([]int, bool) {
	return FeasibleBound(atoms, patterns, nil)
}

// FeasibleBound is Feasible with an initial set of pre-bound variables —
// query parameters whose values arrive at execution time (e.g. the user key
// of a prepared key-lookup query).
func FeasibleBound(atoms []pivot.Atom, patterns map[string]AccessPattern, preBound map[pivot.Var]bool) ([]int, bool) {
	bound := map[pivot.Var]bool{}
	for v := range preBound {
		bound[v] = true
	}
	used := make([]bool, len(atoms))
	order := make([]int, 0, len(atoms))
	canPlace := func(a pivot.Atom) bool {
		p := patterns[a.Pred]
		for _, pos := range p.BoundPositions() {
			if pos >= len(a.Args) {
				return false
			}
			t := a.Args[pos]
			if v, ok := t.(pivot.Var); ok && !bound[v] {
				return false
			}
		}
		return true
	}
	for len(order) < len(atoms) {
		placed := false
		for i, a := range atoms {
			if used[i] || !canPlace(a) {
				continue
			}
			used[i] = true
			order = append(order, i)
			for _, v := range a.Vars() {
				bound[v] = true
			}
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return order, true
}

// FeasibleOrders enumerates access-pattern-feasible orderings of atoms by
// backtracking, returning at most max of them (all when max <= 0). It is
// exponential in the worst case and intended for small bodies: exhaustive
// plan-space oracles in tests and offline plan debugging, not the query path
// (the planner's greedy ordering is the production strategy).
func FeasibleOrders(atoms []pivot.Atom, patterns map[string]AccessPattern, max int) [][]int {
	bound := map[pivot.Var]bool{}
	used := make([]bool, len(atoms))
	order := make([]int, 0, len(atoms))
	var out [][]int
	canPlace := func(a pivot.Atom) bool {
		p := patterns[a.Pred]
		for _, pos := range p.BoundPositions() {
			if pos >= len(a.Args) {
				return false
			}
			t := a.Args[pos]
			if v, ok := t.(pivot.Var); ok && !bound[v] {
				return false
			}
		}
		return true
	}
	var walk func()
	walk = func() {
		if max > 0 && len(out) >= max {
			return
		}
		if len(order) == len(atoms) {
			out = append(out, append([]int(nil), order...))
			return
		}
		for i, a := range atoms {
			if used[i] || !canPlace(a) {
				continue
			}
			newly := make([]pivot.Var, 0, 4)
			for _, v := range a.Vars() {
				if !bound[v] {
					bound[v] = true
					newly = append(newly, v)
				}
			}
			used[i] = true
			order = append(order, i)
			walk()
			order = order[:len(order)-1]
			used[i] = false
			for _, v := range newly {
				delete(bound, v)
			}
		}
	}
	walk()
	return out
}

// rewritingKey canonically identifies a rewriting by its sorted body atom
// keys; used for deduplication and subset tests.
func rewritingKey(body []pivot.Atom) string {
	keys := make([]string, len(body))
	for i, a := range body {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
