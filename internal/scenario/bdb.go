package scenario

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lang"
	"repro/internal/maintain"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/value"
)

// The demo (§IV) also runs on datasets from the AMPLab Big Data Benchmark.
// BDBDeploy loads Rankings and UserVisits either "vanilla" (both relations
// in one relational store, the single-store execution of demo step 3) or
// "hybrid" (Rankings relational and indexed, UserVisits in the parallel
// store, plus the Rankings⋈UserVisits join materialized in the parallel
// store indexed by search word).

// BDBSchema is the logical schema of the Big Data Benchmark relations.
var BDBSchema = lang.Schema{
	"Rankings":   {"url", "rank", "avgdur"},
	"UserVisits": {"ip", "url", "date", "revenue", "country", "word"},
}

// BDBDeploy is a running BDB deployment.
type BDBDeploy struct {
	Sys    *core.System
	Data   *datagen.BDB
	Hybrid bool
}

func bdbIdentityView(name, over string) rewrite.View {
	cols := BDBSchema[over]
	args := make([]pivot.Term, len(cols))
	for i, c := range cols {
		args[i] = v(c)
	}
	return rewrite.NewView(name, pivot.NewCQ(
		pivot.NewAtom(name, args...), pivot.NewAtom(over, args...)))
}

// NewBDB builds and loads a BDB deployment.
func NewBDB(cfg datagen.BDBConfig, hybrid bool) (*BDBDeploy, error) {
	data := datagen.NewBDB(cfg)
	sys := core.New(core.Options{})
	// Same scaled-down per-request service times as the marketplace wiring.
	sys.AddRelStore("pg").SetRequestLatency(10 * time.Microsecond)
	sys.AddParStore("spark", 8).SetRequestLatency(150 * time.Microsecond)

	d := &BDBDeploy{Sys: sys, Data: data, Hybrid: hybrid}
	rank := &catalog.Fragment{
		Name: "FRankings", Dataset: "bdb", View: bdbIdentityView("FRankings", "Rankings"),
		Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "rankings",
			Columns: BDBSchema["Rankings"], IndexCols: []int{0}},
	}
	if err := sys.RegisterFragment(rank); err != nil {
		return nil, err
	}
	if err := sys.Materialize("FRankings", data.Rankings); err != nil {
		return nil, err
	}

	if hybrid {
		uv := &catalog.Fragment{
			Name: "FUserVisits", Dataset: "bdb", View: bdbIdentityView("FUserVisits", "UserVisits"),
			Store: "spark",
			Layout: catalog.Layout{Kind: catalog.LayoutPar, Collection: "uservisits",
				Columns: BDBSchema["UserVisits"], PartitionCol: 1, IndexCols: []int{5}},
		}
		if err := sys.RegisterFragment(uv); err != nil {
			return nil, err
		}
		if err := sys.Materialize("FUserVisits", data.UserVisits); err != nil {
			return nil, err
		}
		// Materialized join: FRV(word, url, rank, revenue) in the parallel
		// store, indexed by word — fits the per-word join workload.
		frv := &catalog.Fragment{
			Name: "FRV", Dataset: "bdb", View: rewrite.NewView("FRV", pivot.NewCQ(
				pivot.NewAtom("FRV", v("word"), v("url"), v("rank"), v("revenue")),
				pivot.NewAtom("Rankings", v("url"), v("rank"), v("avgdur")),
				pivot.NewAtom("UserVisits", v("ip"), v("url"), v("date"), v("revenue"), v("country"), v("word")),
			)),
			Store: "spark",
			Layout: catalog.Layout{Kind: catalog.LayoutPar, Collection: "rv",
				Columns:      []string{"word", "url", "rank", "revenue"},
				PartitionCol: 0, IndexCols: []int{0}},
		}
		if err := sys.RegisterFragment(frv); err != nil {
			return nil, err
		}
		if err := sys.Materialize("FRV", d.joinRows()); err != nil {
			return nil, err
		}
	} else {
		uv := &catalog.Fragment{
			Name: "FUserVisits", Dataset: "bdb", View: bdbIdentityView("FUserVisits", "UserVisits"),
			Store: "pg",
			Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "uservisits",
				Columns: BDBSchema["UserVisits"]},
		}
		if err := sys.RegisterFragment(uv); err != nil {
			return nil, err
		}
		if err := sys.Materialize("FUserVisits", data.UserVisits); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Maintained attaches the write path to a deployed BDB instance: base
// relations are seeded from the generated benchmark data and every
// registered fragment (including the hybrid variant's materialized
// Rankings⋈UserVisits join) is adopted for incremental maintenance.
func (d *BDBDeploy) Maintained() (*maintain.Maintainer, error) {
	// Detached until bootstrap completes (see Marketplace.Maintained).
	mt := maintain.NewDetached(d.Sys)
	seeds := map[string][]value.Tuple{
		"Rankings":   d.Data.Rankings,
		"UserVisits": d.Data.UserVisits,
	}
	for pred, rows := range seeds {
		if err := mt.SeedBase(pred, rows); err != nil {
			return nil, fmt.Errorf("seed %s: %w", pred, err)
		}
	}
	if err := mt.TrackAll(); err != nil {
		return nil, err
	}
	mt.Attach()
	return mt, nil
}

// joinRows computes the FRV extent (distinct tuples, set semantics).
func (d *BDBDeploy) joinRows() []value.Tuple {
	rankOf := map[string]value.Value{}
	for _, r := range d.Data.Rankings {
		rankOf[string(r[0].(value.Str))] = r[1]
	}
	seen := map[string]bool{}
	var out []value.Tuple
	for _, uv := range d.Data.UserVisits {
		url := string(uv[1].(value.Str))
		rank, ok := rankOf[url]
		if !ok {
			continue
		}
		row := value.Tuple{uv[5], uv[1], rank, uv[3]}
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// RankLookupQuery is the BDB selection query shape: rankings of one page.
func RankLookupQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QRank", v("url"), v("rank")),
		pivot.NewAtom("Rankings", v("url"), v("rank"), v("avgdur")))
}

// JoinByWordQuery is the BDB join query shape: pages (with ranks and ad
// revenue) visited through a given search word. Parameter: word (head 0).
func JoinByWordQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QJoin", v("word"), v("url"), v("rank"), v("revenue")),
		pivot.NewAtom("Rankings", v("url"), v("rank"), v("avgdur")),
		pivot.NewAtom("UserVisits", v("ip"), v("url"), v("date"), v("revenue"), v("country"), v("word")))
}
