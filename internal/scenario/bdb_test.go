package scenario

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/value"
)

func bdbCfg() datagen.BDBConfig {
	return datagen.BDBConfig{Seed: 5, Rankings: 300, UserVisits: 1200}
}

func TestBDBVanillaAndHybridAgree(t *testing.T) {
	van, err := NewBDB(bdbCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := NewBDB(bdbCfg(), true)
	if err != nil {
		t.Fatal(err)
	}
	qv, err := van.Sys.Prepare(JoinByWordQuery(), "word")
	if err != nil {
		t.Fatal(err)
	}
	qh, err := hyb.Sys.Prepare(JoinByWordQuery(), "word")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"alpha", "bravo", "echo"} {
		a := execSetT(t, qv, value.Str(w))
		b := execSetT(t, qh, value.Str(w))
		if len(a) == 0 {
			t.Fatalf("word %s: no results", w)
		}
		if len(a) != len(b) {
			t.Fatalf("word %s: vanilla %d rows, hybrid %d", w, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("word %s: hybrid missing row %s", w, k)
			}
		}
	}
	// The hybrid deployment must use the materialized join fragment.
	if qh.Rewriting().Body[0].Pred != "FRV" || len(qh.Rewriting().Body) != 1 {
		t.Errorf("hybrid rewriting = %v, want single FRV atom", qh.Rewriting())
	}
}

func TestBDBRankLookup(t *testing.T) {
	van, err := NewBDB(bdbCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := van.Sys.Prepare(RankLookupQuery(), "url")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Exec(value.Str(datagen.URL(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func execSetT(t *testing.T, p interface {
	Exec(...value.Value) ([]value.Tuple, error)
}, args ...value.Value) map[string]bool {
	t.Helper()
	rows, err := p.Exec(args...)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, r := range rows {
		out[r.Key()] = true
	}
	return out
}
