// Package scenario wires the paper's motivating scenario (§II) — the
// Datalyse-inspired online marketplace — into a running ESTOCADA instance,
// in each of the storage configurations the scenario steps through:
//
//   - Baseline: user data/preferences/orders in Postgres (relational),
//     product catalog in SOLR (full-text), shopping carts in MongoDB
//     (documents), web logs in Spark (parallel) — "the system's first
//     release".
//   - KV: preferences and carts migrated to the key-value store
//     (the Voldemort episode, ~20 % workload gain).
//   - Materialized: KV plus the purchases⋈browsing join materialized as a
//     relation in Spark indexed by user ID and product category (the
//     personalized-search episode, ~40 % extra gain).
//
// The same logical schema and queries run unchanged against every variant —
// the point of the paper.
package scenario

import (
	"time"

	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lang"
	"repro/internal/maintain"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/value"
)

// Variant selects the storage configuration.
type Variant int

const (
	// Baseline is the first-release layout (rel + doc + text + parallel).
	Baseline Variant = iota
	// KV migrates preferences and carts to the key-value store.
	KV
	// Materialized is KV plus the purchase-history fragment in the
	// parallel store.
	Materialized
)

func (v Variant) String() string {
	switch v {
	case KV:
		return "kv"
	case Materialized:
		return "materialized"
	default:
		return "baseline"
	}
}

// LogicalSchema is the marketplace's logical relations (shared by the
// surface-language parsers).
var LogicalSchema = lang.Schema{
	"Users":    {"uid", "name", "city"},
	"Prefs":    {"uid", "key", "val"},
	"Products": {"pid", "category", "descr"},
	"Orders":   {"oid", "uid", "pid", "amount"},
	"Carts":    {"uid", "pid", "qty"},
	"Visits":   {"uid", "pid", "dur"},
}

// Marketplace is a running marketplace deployment.
type Marketplace struct {
	Sys     *core.System
	Data    *datagen.Marketplace
	Variant Variant
}

func v(name string) pivot.Var { return pivot.Var(name) }

// identityView builds the identity view over a logical relation using its
// schema column names as variables.
func identityView(name, over string) rewrite.View {
	cols := LogicalSchema[over]
	args := make([]pivot.Term, len(cols))
	for i, c := range cols {
		args[i] = v(c)
	}
	return rewrite.NewView(name, pivot.NewCQ(
		pivot.NewAtom(name, args...), pivot.NewAtom(over, args...)))
}

// New builds and loads a marketplace deployment.
func New(cfg datagen.MarketplaceConfig, variant Variant) (*Marketplace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data := datagen.NewMarketplace(cfg)
	sys := core.New(core.Options{})
	// Per-request service times: scaled-down (~50×) LAN round-trip +
	// dispatch costs of the real systems, preserving their ratios (a Redis
	// GET ≪ a Postgres/MongoDB query ≪ a Spark job). See DESIGN.md §2.
	sys.AddRelStore("pg").SetRequestLatency(10 * time.Microsecond)
	sys.AddDocStore("mongo").SetRequestLatency(12 * time.Microsecond)
	sys.AddTextStore("solr").SetRequestLatency(15 * time.Microsecond)
	sys.AddParStore("spark", 8).SetRequestLatency(150 * time.Microsecond)
	sys.AddKVStore("redis").SetRequestLatency(2 * time.Microsecond)

	m := &Marketplace{Sys: sys, Data: data, Variant: variant}
	if err := m.registerCommon(); err != nil {
		return nil, err
	}
	switch variant {
	case Baseline:
		if err := m.registerBaselinePrefsCarts(); err != nil {
			return nil, err
		}
	case KV, Materialized:
		if err := m.registerKVPrefsCarts(); err != nil {
			return nil, err
		}
	}
	if variant == Materialized {
		if err := m.registerPurchaseHistory(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Marketplace) registerCommon() error {
	frags := []*catalog.Fragment{
		{
			Name: "FUsers", Dataset: "marketplace", View: identityView("FUsers", "Users"),
			Store: "pg",
			Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "users",
				Columns: LogicalSchema["Users"], IndexCols: []int{0}},
		},
		{
			Name: "FOrders", Dataset: "marketplace", View: identityView("FOrders", "Orders"),
			Store: "pg",
			Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "orders",
				Columns: LogicalSchema["Orders"], IndexCols: []int{1}},
		},
		{
			Name: "FProducts", Dataset: "marketplace", View: identityView("FProducts", "Products"),
			Store: "solr",
			Layout: catalog.Layout{Kind: catalog.LayoutText, Collection: "products",
				Columns: LogicalSchema["Products"], TextField: "descr"},
		},
		{
			Name: "FVisits", Dataset: "marketplace", View: identityView("FVisits", "Visits"),
			Store: "spark",
			Layout: catalog.Layout{Kind: catalog.LayoutPar, Collection: "visits",
				Columns: LogicalSchema["Visits"], PartitionCol: 0},
		},
	}
	loads := map[string][]value.Tuple{
		"FUsers":    m.Data.Users,
		"FOrders":   m.Data.Orders,
		"FProducts": m.Data.Products,
		"FVisits":   m.Data.Visits,
	}
	for _, f := range frags {
		if err := m.Sys.RegisterFragment(f); err != nil {
			return err
		}
		if err := m.Sys.Materialize(f.Name, loads[f.Name]); err != nil {
			return err
		}
	}
	return nil
}

// registerBaselinePrefsCarts places preferences in Postgres and carts in
// MongoDB (first-release layout).
func (m *Marketplace) registerBaselinePrefsCarts() error {
	prefs := &catalog.Fragment{
		Name: "FPrefs", Dataset: "marketplace", View: identityView("FPrefs", "Prefs"),
		Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "prefs",
			Columns: LogicalSchema["Prefs"], IndexCols: []int{0}},
	}
	carts := &catalog.Fragment{
		Name: "FCarts", Dataset: "marketplace", View: identityView("FCarts", "Carts"),
		Store: "mongo",
		Layout: catalog.Layout{Kind: catalog.LayoutDoc, Collection: "carts",
			DocPaths: []string{"user", "item.pid", "item.qty"}, IndexCols: []int{0}},
	}
	for f, rows := range map[*catalog.Fragment][]value.Tuple{prefs: m.Data.Prefs, carts: m.Data.Carts} {
		if err := m.Sys.RegisterFragment(f); err != nil {
			return err
		}
		if err := m.Sys.Materialize(f.Name, rows); err != nil {
			return err
		}
	}
	return nil
}

// registerKVPrefsCarts places preferences and carts in the key-value store
// keyed by user (the Voldemort migration).
func (m *Marketplace) registerKVPrefsCarts() error {
	prefs := &catalog.Fragment{
		Name: "FPrefs", Dataset: "marketplace", View: identityView("FPrefs", "Prefs"),
		Store:  "redis",
		Layout: catalog.Layout{Kind: catalog.LayoutKV, Collection: "prefs", KeyCol: 0},
		Access: "bff",
	}
	carts := &catalog.Fragment{
		Name: "FCarts", Dataset: "marketplace", View: identityView("FCarts", "Carts"),
		Store:  "redis",
		Layout: catalog.Layout{Kind: catalog.LayoutKV, Collection: "carts", KeyCol: 0},
		Access: "bff",
	}
	for f, rows := range map[*catalog.Fragment][]value.Tuple{prefs: m.Data.Prefs, carts: m.Data.Carts} {
		if err := m.Sys.RegisterFragment(f); err != nil {
			return err
		}
		if err := m.Sys.Materialize(f.Name, rows); err != nil {
			return err
		}
	}
	return nil
}

// PurchaseHistoryView is the materialized join fragment's definition:
//
//	FPH(uid, category, pid, dur) :- Orders(oid, uid, pid, amount) ∧
//	                                Visits(uid, pid, dur) ∧
//	                                Products(pid, category, descr)
func PurchaseHistoryView() rewrite.View {
	return rewrite.NewView("FPH", pivot.NewCQ(
		pivot.NewAtom("FPH", v("uid"), v("category"), v("pid"), v("dur")),
		pivot.NewAtom("Orders", v("oid"), v("uid"), v("pid"), v("amount")),
		pivot.NewAtom("Visits", v("uid"), v("pid"), v("dur")),
		pivot.NewAtom("Products", v("pid"), v("category"), v("descr")),
	))
}

// registerPurchaseHistory materializes the purchases⋈browsing⋈catalog join
// into the parallel store, indexed by user ID and product category
// (the scenario's Spark fragment).
func (m *Marketplace) registerPurchaseHistory() error {
	frag := &catalog.Fragment{
		Name: "FPH", Dataset: "marketplace", View: PurchaseHistoryView(),
		Store: "spark",
		Layout: catalog.Layout{Kind: catalog.LayoutPar, Collection: "ph",
			Columns:      []string{"uid", "category", "pid", "dur"},
			PartitionCol: 0, IndexCols: []int{0, 1}},
	}
	if err := m.Sys.RegisterFragment(frag); err != nil {
		return err
	}
	return m.Sys.Materialize("FPH", m.purchaseHistoryRows())
}

// purchaseHistoryRows computes the view extent directly from the generated
// data (set semantics: distinct tuples).
func (m *Marketplace) purchaseHistoryRows() []value.Tuple {
	cat := map[string]string{}
	for _, p := range m.Data.Products {
		cat[string(p[0].(value.Str))] = string(p[1].(value.Str))
	}
	bought := map[[2]string]bool{}
	for _, o := range m.Data.Orders {
		bought[[2]string{string(o[1].(value.Str)), string(o[2].(value.Str))}] = true
	}
	seen := map[string]bool{}
	var out []value.Tuple
	for _, vi := range m.Data.Visits {
		uid := string(vi[0].(value.Str))
		pid := string(vi[1].(value.Str))
		if !bought[[2]string{uid, pid}] {
			continue
		}
		row := value.TupleOf(uid, cat[pid], pid, int64(vi[2].(value.Int)))
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// Maintained attaches the write path to a deployed marketplace: the
// logical base relations are seeded from the generated source data and
// every registered fragment (identity views and, in the Materialized
// variant, the purchase-history join) is adopted for incremental
// maintenance. Afterwards sys.InsertInto/DeleteFrom accept live DML.
func (m *Marketplace) Maintained() (*maintain.Maintainer, error) {
	// Detached until bootstrap completes: a seed or track failure must
	// leave the system refusing writes, not serving them half-tracked.
	mt := maintain.NewDetached(m.Sys)
	seeds := map[string][]value.Tuple{
		"Users":    m.Data.Users,
		"Orders":   m.Data.Orders,
		"Products": m.Data.Products,
		"Visits":   m.Data.Visits,
		"Prefs":    m.Data.Prefs,
		"Carts":    m.Data.Carts,
	}
	for pred, rows := range seeds {
		if err := mt.SeedBase(pred, rows); err != nil {
			return nil, fmt.Errorf("seed %s: %w", pred, err)
		}
	}
	if err := mt.TrackAll(); err != nil {
		return nil, err
	}
	mt.Attach()
	return mt, nil
}

// PrefsLookupQuery is the prepared "user preferences by key" query of the
// E1 workload: Q(uid, key, val) :- Prefs(uid, key, val), parameter uid.
func PrefsLookupQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QPrefs", v("uid"), v("key"), v("val")),
		pivot.NewAtom("Prefs", v("uid"), v("key"), v("val")))
}

// CartLookupQuery is the prepared "shopping cart by user" query.
func CartLookupQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QCart", v("uid"), v("pid"), v("qty")),
		pivot.NewAtom("Carts", v("uid"), v("pid"), v("qty")))
}

// ProfileQuery joins users to their orders (stays relational in every
// variant; the 20 % of the E1 workload that is not key lookups).
func ProfileQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QProfile", v("uid"), v("name"), v("pid")),
		pivot.NewAtom("Users", v("uid"), v("name"), v("city")),
		pivot.NewAtom("Orders", v("oid"), v("uid"), v("pid"), v("amount")))
}

// PersonalizedSearchQuery is the scenario's bottleneck query: products of a
// given category that the user both bought and browsed, with dwell time.
// Parameters: uid (head 0), category (head 1).
func PersonalizedSearchQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QSearch", v("uid"), v("category"), v("pid"), v("dur")),
		pivot.NewAtom("Orders", v("oid"), v("uid"), v("pid"), v("amount")),
		pivot.NewAtom("Visits", v("uid"), v("pid"), v("dur")),
		pivot.NewAtom("Products", v("pid"), v("category"), v("descr")))
}

// Prepare pre-plans the scenario's four workload queries against this
// deployment.
func (m *Marketplace) Prepare() (*Workload, error) {
	prefs, err := m.Sys.Prepare(PrefsLookupQuery(), "uid")
	if err != nil {
		return nil, fmt.Errorf("prefs lookup: %w", err)
	}
	carts, err := m.Sys.Prepare(CartLookupQuery(), "uid")
	if err != nil {
		return nil, fmt.Errorf("cart lookup: %w", err)
	}
	profile, err := m.Sys.Prepare(ProfileQuery(), "uid")
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	search, err := m.Sys.Prepare(PersonalizedSearchQuery(), "uid", "category")
	if err != nil {
		return nil, fmt.Errorf("personalized search: %w", err)
	}
	return &Workload{Prefs: prefs, Carts: carts, Profile: profile, Search: search}, nil
}

// Workload bundles the prepared scenario queries.
type Workload struct {
	Prefs   *core.Prepared
	Carts   *core.Prepared
	Profile *core.Prepared
	Search  *core.Prepared
}

// RunMixed executes the E1 mixed workload over the given user keys:
// 40 % preference lookups, 40 % cart lookups, 20 % profile queries. It
// returns the total number of result rows (a checksum against dead-code
// elimination in benchmarks).
func (w *Workload) RunMixed(keys []string) (int, error) {
	total := 0
	for i, k := range keys {
		var rows []value.Tuple
		var err error
		switch i % 5 {
		case 0, 1:
			rows, err = w.Prefs.Exec(value.Str(k))
		case 2, 3:
			rows, err = w.Carts.Exec(value.Str(k))
		default:
			rows, err = w.Profile.Exec(value.Str(k))
		}
		if err != nil {
			return total, err
		}
		total += len(rows)
	}
	return total, nil
}

// RunSearch executes the E2 personalized-search workload.
func (w *Workload) RunSearch(params [][2]string) (int, error) {
	total := 0
	for _, p := range params {
		rows, err := w.Search.Exec(value.Str(p[0]), value.Str(p[1]))
		if err != nil {
			return total, err
		}
		total += len(rows)
	}
	return total, nil
}
