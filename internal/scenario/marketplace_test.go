package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/value"
)

func smallCfg() datagen.MarketplaceConfig {
	return datagen.MarketplaceConfig{
		Seed: 11, Users: 60, Products: 24, OrdersPerUser: 3,
		VisitsPerUser: 6, PrefsPerUser: 3, CartItemsPerUser: 2, ZipfS: 1.3,
	}
}

func buildAll(t *testing.T) map[Variant]*Marketplace {
	t.Helper()
	out := map[Variant]*Marketplace{}
	for _, variant := range []Variant{Baseline, KV, Materialized} {
		m, err := New(smallCfg(), variant)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		out[variant] = m
	}
	return out
}

func TestAllVariantsAnswerTheWorkload(t *testing.T) {
	for variant, m := range buildAll(t) {
		w, err := m.Prepare()
		if err != nil {
			t.Fatalf("%v: prepare: %v", variant, err)
		}
		keys := m.Data.ZipfUserKeys(50, 3)
		n, err := w.RunMixed(keys)
		if err != nil {
			t.Fatalf("%v: mixed: %v", variant, err)
		}
		if n == 0 {
			t.Errorf("%v: mixed workload returned no rows", variant)
		}
		params := m.Data.PersonalizedSearchParams(20, 4)
		if _, err := w.RunSearch(params); err != nil {
			t.Fatalf("%v: search: %v", variant, err)
		}
	}
}

// The heart of the reproduction: every variant must return the SAME answers
// for the same logical queries — soundness and completeness of the store.
func TestVariantsAgreeOnAnswers(t *testing.T) {
	ms := buildAll(t)
	workloads := map[Variant]*Workload{}
	for variant, m := range ms {
		w, err := m.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		workloads[variant] = w
	}
	keys := ms[Baseline].Data.ZipfUserKeys(40, 5)
	for _, k := range keys {
		base := execSet(t, workloads[Baseline].Prefs, value.Str(k))
		for _, variant := range []Variant{KV, Materialized} {
			got := execSet(t, workloads[variant].Prefs, value.Str(k))
			assertSameSet(t, base, got, "prefs", k, variant)
		}
		baseCarts := execSet(t, workloads[Baseline].Carts, value.Str(k))
		for _, variant := range []Variant{KV, Materialized} {
			got := execSet(t, workloads[variant].Carts, value.Str(k))
			assertSameSet(t, baseCarts, got, "carts", k, variant)
		}
	}
	params := ms[Baseline].Data.PersonalizedSearchParams(25, 6)
	for _, p := range params {
		base := execSet(t, workloads[Baseline].Search, value.Str(p[0]), value.Str(p[1]))
		got := execSet(t, workloads[Materialized].Search, value.Str(p[0]), value.Str(p[1]))
		assertSameSet(t, base, got, "search", p[0]+"/"+p[1], Materialized)
	}
}

func execSet(t *testing.T, p *core.Prepared, args ...value.Value) map[string]bool {
	t.Helper()
	rows, err := p.Exec(args...)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, r := range rows {
		out[r.Key()] = true
	}
	return out
}

func assertSameSet(t *testing.T, want, got map[string]bool, what, key string, variant Variant) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s(%s) under %v: %d rows, baseline has %d", what, key, variant, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s(%s) under %v: missing row %s", what, key, variant, k)
		}
	}
}

func TestMaterializedVariantUsesFPH(t *testing.T) {
	m, err := New(smallCfg(), Materialized)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Search.Rewriting().Body[0].Pred; got != "FPH" || len(w.Search.Rewriting().Body) != 1 {
		t.Errorf("search rewriting = %v, want single FPH atom", w.Search.Rewriting())
	}
}

func TestKVVariantUsesRedis(t *testing.T) {
	m, err := New(smallCfg(), KV)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Prefs.Rewriting().Body[0].Pred; got != "FPrefs" {
		t.Errorf("prefs rewriting = %v", w.Prefs.Rewriting())
	}
	redis, ok := m.Sys.Stores.Engine("redis")
	if !ok {
		t.Fatal("no redis engine")
	}
	before := redis.Counters().Snapshot()
	if _, err := w.Prefs.Exec(value.Str(datagen.UID(0))); err != nil {
		t.Fatal(err)
	}
	if redis.Counters().Snapshot().Lookups == before.Lookups {
		t.Error("redis saw no lookups in the KV variant")
	}
}

// Soak: a larger deployment exercises every store and the full query path
// at a scale closer to the benchmarks (kept under ~10 s).
func TestSoakLargerDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := datagen.MarketplaceConfig{
		Seed: 77, Users: 5000, Products: 800, OrdersPerUser: 4,
		VisitsPerUser: 8, PrefsPerUser: 3, CartItemsPerUser: 2, ZipfS: 1.3,
	}
	m, err := New(cfg, Materialized)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	keys := m.Data.ZipfUserKeys(1500, 7)
	n, err := w.RunMixed(keys)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("mixed workload returned nothing")
	}
	params := m.Data.PersonalizedSearchParams(150, 8)
	if _, err := w.RunSearch(params); err != nil {
		t.Fatal(err)
	}
	// Every store did real work.
	for _, name := range []string{"pg", "redis", "spark"} {
		e, ok := m.Sys.Stores.Engine(name)
		if !ok {
			t.Fatalf("no engine %s", name)
		}
		if e.Counters().Snapshot().Requests == 0 {
			t.Errorf("store %s saw no requests", name)
		}
	}
}
