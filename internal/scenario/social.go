// Social is a second deployment scenario exercising the cost-based
// planner: a social-graph feed whose every query is bind-join heavy. The
// member base is relational, the follow graph and likes live in the
// key-value store (reachable only through a bound source key), and posts
// are documents indexed by post id and author. Query bodies deliberately
// list the large scannable posts relation first, so a planner that takes
// the first feasible clause order scans every post, while the cost-based
// planner starts from the parameter-keyed follow/like lookup and reaches
// posts through an indexed bind join.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/lang"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/value"
)

// SocialSchema is the social graph's logical relations.
var SocialSchema = lang.Schema{
	"Members": {"uid", "name", "city"},
	"Follows": {"src", "dst"},
	"Posts":   {"pid", "author", "topic"},
	"Likes":   {"uid", "pid"},
}

// Social is a running social-graph deployment.
type Social struct {
	Sys  *core.System
	Data *datagen.Social
}

// socialIdentityView builds the identity view over a social relation using
// its schema column names as variables.
func socialIdentityView(name, over string) rewrite.View {
	cols := SocialSchema[over]
	args := make([]pivot.Term, len(cols))
	for i, c := range cols {
		args[i] = v(c)
	}
	return rewrite.NewView(name, pivot.NewCQ(
		pivot.NewAtom(name, args...), pivot.NewAtom(over, args...)))
}

// NewSocial builds and loads a social-graph deployment. fixedOrder selects
// the first-feasible-order planner baseline instead of the cost-based one
// (the ablation the planner benchmarks compare against).
func NewSocial(cfg datagen.SocialConfig, fixedOrder bool) (*Social, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	data := datagen.NewSocial(cfg)
	sys := core.New(core.Options{FixedOrderPlanner: fixedOrder})
	sys.AddRelStore("pg").SetRequestLatency(10 * time.Microsecond)
	sys.AddDocStore("mongo").SetRequestLatency(12 * time.Microsecond)
	sys.AddKVStore("redis").SetRequestLatency(2 * time.Microsecond)

	s := &Social{Sys: sys, Data: data}
	frags := []*catalog.Fragment{
		{
			Name: "FMembers", Dataset: "social", View: socialIdentityView("FMembers", "Members"),
			Store: "pg",
			Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "members",
				Columns: SocialSchema["Members"], IndexCols: []int{0}},
		},
		{
			Name: "FFollows", Dataset: "social", View: socialIdentityView("FFollows", "Follows"),
			Store:  "redis",
			Layout: catalog.Layout{Kind: catalog.LayoutKV, Collection: "follows", KeyCol: 0},
			Access: "bf",
		},
		{
			Name: "FPosts", Dataset: "social", View: socialIdentityView("FPosts", "Posts"),
			Store: "mongo",
			Layout: catalog.Layout{Kind: catalog.LayoutDoc, Collection: "posts",
				DocPaths: []string{"pid", "author", "topic"}, IndexCols: []int{0, 1}},
		},
		{
			Name: "FLikes", Dataset: "social", View: socialIdentityView("FLikes", "Likes"),
			Store:  "redis",
			Layout: catalog.Layout{Kind: catalog.LayoutKV, Collection: "likes", KeyCol: 0},
			Access: "bf",
		},
	}
	loads := map[string][]value.Tuple{
		"FMembers": data.Members,
		"FFollows": data.Follows,
		"FPosts":   data.Posts,
		"FLikes":   data.Likes,
	}
	for _, f := range frags {
		if err := sys.RegisterFragment(f); err != nil {
			return nil, err
		}
		if err := sys.Materialize(f.Name, loads[f.Name]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// FeedQuery fetches the topics posted by the members a given member
// follows. The large scannable Posts atom comes first in the body on
// purpose: a first-feasible-order planner starts with a full post scan,
// the cost-based planner reorders to follow-lookup → indexed post fetch →
// member lookup. Parameter: uid (head 0).
func FeedQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QFeed", v("uid"), v("pid"), v("topic")),
		pivot.NewAtom("Posts", v("pid"), v("dst"), v("topic")),
		pivot.NewAtom("Follows", v("uid"), v("dst")),
		pivot.NewAtom("Members", v("uid"), v("name"), v("city")))
}

// LikedTopicsQuery fetches the topics of the posts a member liked —
// a likes-lookup driving an indexed document bind join. Parameter: uid.
func LikedTopicsQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QLiked", v("uid"), v("pid"), v("topic")),
		pivot.NewAtom("Posts", v("pid"), v("author"), v("topic")),
		pivot.NewAtom("Likes", v("uid"), v("pid")))
}

// PrepareSocial pre-plans the social workload against this deployment.
func (s *Social) PrepareSocial() (*SocialWorkload, error) {
	feed, err := s.Sys.Prepare(FeedQuery(), "uid")
	if err != nil {
		return nil, fmt.Errorf("feed: %w", err)
	}
	liked, err := s.Sys.Prepare(LikedTopicsQuery(), "uid")
	if err != nil {
		return nil, fmt.Errorf("liked topics: %w", err)
	}
	return &SocialWorkload{Feed: feed, Liked: liked}, nil
}

// SocialWorkload bundles the prepared social queries.
type SocialWorkload struct {
	Feed  *core.Prepared
	Liked *core.Prepared
}

// Run executes the feed-heavy mix (70 % feed fetches, 30 % liked-topics)
// over the given member keys, returning total result rows as a checksum.
func (w *SocialWorkload) Run(keys []string) (int, error) {
	total := 0
	for i, k := range keys {
		var rows []value.Tuple
		var err error
		if i%10 < 7 {
			rows, err = w.Feed.Exec(value.Str(k))
		} else {
			rows, err = w.Liked.Exec(value.Str(k))
		}
		if err != nil {
			return total, err
		}
		total += len(rows)
	}
	return total, nil
}
