package scenario

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pivot"
	"repro/internal/value"
)

func testSocialCfg() datagen.SocialConfig {
	return datagen.SocialConfig{
		Seed: 21, Members: 120, FollowsPerMember: 5,
		PostsPerMember: 4, LikesPerMember: 6, ZipfS: 1.3,
	}
}

// expectedFeed computes the feed query's answer directly from the dataset.
func expectedFeed(d *datagen.Social, uid string) []string {
	followed := map[string]bool{}
	for _, f := range d.Follows {
		if string(f[0].(value.Str)) == uid {
			followed[string(f[1].(value.Str))] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, p := range d.Posts {
		if !followed[string(p[1].(value.Str))] {
			continue
		}
		row := uid + "|" + string(p[0].(value.Str)) + "|" + string(p[2].(value.Str))
		if !seen[row] {
			seen[row] = true
			out = append(out, row)
		}
	}
	sort.Strings(out)
	return out
}

func feedRows(t *testing.T, s *Social, uid string) []string {
	t.Helper()
	w, err := s.PrepareSocial()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := w.Feed.Exec(value.Str(uid))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(r[0].(value.Str)) + "|" + string(r[1].(value.Str)) + "|" + string(r[2].(value.Str))
	}
	sort.Strings(out)
	return out
}

// TestSocialFeedCorrectAcrossPlanners checks the feed answer against a
// direct computation, for both the cost-based and the fixed-order planner:
// clause reordering must never change results.
func TestSocialFeedCorrectAcrossPlanners(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		s, err := NewSocial(testSocialCfg(), fixed)
		if err != nil {
			t.Fatal(err)
		}
		uid := datagen.UID(0) // rank-0 member: guaranteed follows under Zipf
		want := expectedFeed(s.Data, uid)
		got := feedRows(t, s, uid)
		if len(want) == 0 {
			t.Fatal("test member follows nobody with posts; pick another seed")
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("fixed=%v: feed mismatch\n got %v\nwant %v", fixed, got, want)
		}
	}
}

// TestSocialFeedPlanShape pins the planner behavior the scenario exists to
// exercise: the body lists Posts first, so the fixed-order baseline scans
// posts before touching the follow graph, while the cost-based planner
// reorders to start from the parameter-keyed follows lookup.
func TestSocialFeedPlanShape(t *testing.T) {
	uid := datagen.UID(0)
	boundFeed := pivot.NewCQ(
		pivot.NewAtom("QFeed", pivot.CStr(uid), v("pid"), v("topic")),
		pivot.NewAtom("Posts", v("pid"), v("dst"), v("topic")),
		pivot.NewAtom("Follows", pivot.CStr(uid), v("dst")),
		pivot.NewAtom("Members", pivot.CStr(uid), v("name"), v("city")))

	for _, tc := range []struct {
		fixed       bool
		firstOfPair string
	}{
		{fixed: true, firstOfPair: "FPosts"},
		{fixed: false, firstOfPair: "FFollows"},
	} {
		s, err := NewSocial(testSocialCfg(), tc.fixed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Sys.Query(boundFeed)
		if err != nil {
			t.Fatal(err)
		}
		// The [store.fragment] tags appear only on the numbered clause
		// lines, not in the rewriting header.
		explain := res.Report.PlanExplain
		posts := strings.Index(explain, "[mongo.FPosts]")
		follows := strings.Index(explain, "[redis.FFollows]")
		if posts < 0 || follows < 0 {
			t.Fatalf("fixed=%v: explain misses fragments:\n%s", tc.fixed, explain)
		}
		first := "FFollows"
		if posts < follows {
			first = "FPosts"
		}
		if first != tc.firstOfPair {
			t.Errorf("fixed=%v: plan visits %s first, want %s\n%s", tc.fixed, first, tc.firstOfPair, explain)
		}
	}
}

// TestSocialWorkloadRuns smoke-tests the prepared mix end to end.
func TestSocialWorkloadRuns(t *testing.T) {
	s, err := NewSocial(testSocialCfg(), false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.PrepareSocial()
	if err != nil {
		t.Fatal(err)
	}
	keys := s.Data.ZipfMemberKeys(60, 17)
	n, err := w.Run(keys)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("social workload returned no rows")
	}
}
