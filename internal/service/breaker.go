package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engines/engine"
	"repro/internal/value"
)

// breakers is the service's per-store circuit-breaker table. A store's
// breaker opens after threshold consecutive attributed failures; while
// open, queries touching that store fail fast with ErrStoreUnavailable
// instead of waiting out retries against a store that keeps failing.
// After the cooldown the breaker half-opens: the next query through is
// the trial — success resets the breaker, failure re-opens it
// immediately (the failure count stays saturated).
type breakers struct {
	threshold int
	cooldown  time.Duration
	mu        sync.Mutex
	m         map[string]*breakerCell
}

type breakerCell struct {
	fails     int
	openUntil time.Time
	trips     int64
}

func newBreakers(threshold int, cooldown time.Duration) *breakers {
	return &breakers{threshold: threshold, cooldown: cooldown, m: map[string]*breakerCell{}}
}

func (b *breakers) cell(store string) *breakerCell {
	c := b.m[store]
	if c == nil {
		c = &breakerCell{}
		b.m[store] = c
	}
	return c
}

// fail records one attributed failure and reports whether the store's
// breaker is (now) open.
func (b *breakers) fail(store string) bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cell(store)
	if c.fails < b.threshold {
		c.fails++
	}
	if c.fails >= b.threshold {
		if time.Now().After(c.openUntil) {
			c.trips++
		}
		c.openUntil = time.Now().Add(b.cooldown)
		return true
	}
	return false
}

// ok resets a store's breaker after a successful request.
func (b *breakers) ok(store string) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.m[store]; c != nil {
		c.fails = 0
		c.openUntil = time.Time{}
	}
}

// blocked returns the first of the given stores whose breaker is open
// (fail-fast check before execution), or "".
func (b *breakers) blocked(stores []string) string {
	if b.threshold <= 0 {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	for _, st := range stores {
		if c := b.m[st]; c != nil && now.Before(c.openUntil) {
			return st
		}
	}
	return ""
}

// BreakerState is one store's circuit-breaker snapshot.
type BreakerState struct {
	// ConsecutiveFailures saturates at the configured threshold.
	ConsecutiveFailures int `json:"consecutiveFailures"`
	// Open reports whether queries touching the store currently fail fast.
	Open bool `json:"open"`
	// Trips counts distinct open transitions.
	Trips int64 `json:"trips"`
}

// Breakers snapshots every store breaker that has recorded a failure.
func (s *Service) Breakers() map[string]BreakerState {
	out := map[string]BreakerState{}
	s.brk.mu.Lock()
	defer s.brk.mu.Unlock()
	now := time.Now()
	for store, c := range s.brk.m {
		out[store] = BreakerState{
			ConsecutiveFailures: c.fails,
			Open:                now.Before(c.openUntil),
			Trips:               c.trips,
		}
	}
	return out
}

// maxBackoffShift caps the exponential backoff at initial<<maxBackoffShift.
const maxBackoffShift = 4

// backoffWait sleeps the capped exponential backoff before retry number
// attempt (0-based), honouring ctx.
func backoffWait(ctx context.Context, initial time.Duration, attempt int) error {
	if initial <= 0 {
		return nil
	}
	shift := attempt
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	t := time.NewTimer(initial << shift)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// classifyStoreError maps a store-attributed failure to the service's
// typed sentinels: a stall cut short by the deadline becomes
// ErrStoreTimeout, an injected (transient) fault that is not being
// retried becomes ErrStoreUnavailable. Both wrap the original error, so
// errors.Is still sees the underlying cause.
func classifyStoreError(err error) error {
	var se *engine.StoreError
	if !errors.As(err, &se) {
		return err
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrStoreTimeout, err)
	case errors.Is(err, engine.ErrInjected):
		return fmt.Errorf("%w: %w", ErrStoreUnavailable, err)
	}
	return err
}

// execWithRetry opens a prepared execution with the degradation policy:
// a fail-fast check against open breakers for the stores the plan
// touches, then up to RetryAttempts retries with capped exponential
// backoff for transient (injected) store faults. Permanent store errors
// and deadline expiries are never retried. Every attributed failure
// feeds the failing store's breaker; the eventual error is classified
// into the typed sentinels.
func (s *Service) execWithRetry(ctx context.Context, prep *core.Prepared, args []value.Value) (*core.Rows, error) {
	if st := s.brk.blocked(prep.Stores()); st != "" {
		s.metrics.breakerFastFails.Add(1)
		return nil, fmt.Errorf("%w: store %q circuit open", ErrStoreUnavailable, st)
	}
	for attempt := 0; ; attempt++ {
		cur, err := prep.ExecRows(ctx, nil, args...)
		if err == nil {
			return cur, nil
		}
		var se *engine.StoreError
		if !errors.As(err, &se) {
			return nil, err
		}
		open := s.brk.fail(se.Store)
		transient := errors.Is(err, engine.ErrInjected) &&
			!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
		if !transient || open || attempt >= s.opts.RetryAttempts || ctx.Err() != nil {
			if open && transient {
				s.metrics.breakerFastFails.Add(1)
			}
			return nil, classifyStoreError(err)
		}
		s.metrics.retries.Add(1)
		if werr := backoffWait(ctx, s.opts.RetryBackoff, attempt); werr != nil {
			return nil, werr
		}
	}
}

// noteStoreOutcome feeds a finished cursor's outcome back into the
// breaker table: a clean close resets the breaker of every store the
// execution touched; a store-attributed failure counts against the
// failing store.
func (s *Service) noteStoreOutcome(perStore map[string]engine.CounterSnapshot, err error) {
	if err == nil {
		for store := range perStore {
			s.brk.ok(store)
		}
		return
	}
	var se *engine.StoreError
	if errors.As(err, &se) {
		s.brk.fail(se.Store)
	}
}
