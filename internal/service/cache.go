package service

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"

	"repro/internal/core"
)

// planCache is the shared, sharded rewriting cache. Entries are keyed by
// query fingerprint and hold a *core.Prepared (the expensive PACB
// rewriting plus its bound-plan cache). Concurrent cold misses of one
// fingerprint coalesce onto a single rewrite (single-flight): the first
// caller becomes the leader and runs PACB; followers wait on the entry's
// ready channel instead of each re-running the backchase.
//
// Invalidation is epoch-based: every entry records the core.System
// catalog epoch it was prepared under; a lookup that finds an entry from
// an older epoch treats it as a miss and replaces it. Fragment
// registration/drop therefore invalidates lazily, per entry, instead of
// flushing the world under a global lock.
type planCache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	epoch uint64
	ready chan struct{} // closed once prep/err are set
	prep  *core.Prepared
	err   error
}

func newPlanCache(shards int) *planCache {
	if shards < 1 {
		shards = 1
	}
	c := &planCache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

func (c *planCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// lookupOutcome says how a cache access was served.
type lookupOutcome int

const (
	outcomeHit       lookupOutcome = iota // entry was ready
	outcomeCoalesced                      // waited on another caller's rewrite
	outcomeMiss                           // this caller ran the rewrite
)

// get returns the entry for a fingerprint, running prepare exactly once
// per (key, epoch) across concurrent callers. epoch is the catalog
// generation observed by the caller; ctx bounds a follower's wait.
func (c *planCache) get(ctx context.Context, key string, epoch uint64, prepare func() (*core.Prepared, error)) (*core.Prepared, lookupOutcome, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	e := sh.m[key]
	if e != nil && e.epoch < epoch {
		// Stale generation: replace. A leader still filling the old entry
		// completes harmlessly against its own (now unreachable) entry.
		// Entries from a NEWER epoch than the caller observed are kept —
		// they are at least as fresh as what the caller would build.
		e = nil
	}
	if e == nil {
		e = &cacheEntry{epoch: epoch, ready: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()
		prep, err := prepare()
		e.prep, e.err = prep, err
		close(e.ready)
		if err != nil {
			// Deterministic failures (no plan, infeasible) stay cached for
			// the epoch — retrying cannot change them until the catalog
			// does. Context errors are transient (the leader's caller timed
			// out); drop the entry so the next caller retries the rewrite.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				sh.mu.Lock()
				if sh.m[key] == e {
					delete(sh.m, key)
				}
				sh.mu.Unlock()
			}
			return nil, outcomeMiss, err
		}
		return prep, outcomeMiss, nil
	}
	sh.mu.Unlock()

	outcome := outcomeHit
	select {
	case <-e.ready:
	default:
		outcome = outcomeCoalesced
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, outcome, ctx.Err()
		}
	}
	return e.prep, outcome, e.err
}

// len reports the number of cached entries (ready or in flight).
func (c *planCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
