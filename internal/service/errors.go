package service

import "errors"

// Typed sentinel errors. Front ends match these with errors.Is to map
// failures to transport-level codes (the HTTP server maps client
// mistakes — parse errors, unknown languages, missing schema, bad
// statement handles or arguments — to 4xx, timeouts to 504, and
// everything else to 500) instead of guessing from error text.
var (
	// ErrParse wraps a surface-language parse failure; the underlying
	// lang error is appended to the message.
	ErrParse = errors.New("service: query parse error")
	// ErrUnknownLanguage is returned for a query language other than
	// sql, flwor or cq.
	ErrUnknownLanguage = errors.New("service: unknown query language (sql|flwor|cq)")
	// ErrNoSchema is returned when a surface-language query arrives but
	// Options.Schema was not configured.
	ErrNoSchema = errors.New("service: no schema configured for surface languages")
	// ErrUnknownStatement is returned by Execute for a statement ID that
	// was never prepared or has been closed.
	ErrUnknownStatement = errors.New("service: unknown prepared statement")
	// ErrBadArgs is returned when Execute's argument count does not match
	// the statement's parameter count.
	ErrBadArgs = errors.New("service: wrong argument count for prepared statement")
	// ErrResultTruncated is returned (in-band, after MaxResultRows rows
	// have been delivered) when a result exceeds the configured cap — a
	// runaway query surfaces a typed error instead of materializing
	// without bound.
	ErrResultTruncated = errors.New("service: result truncated at MaxResultRows")
	// ErrStoreUnavailable is returned when a store keeps failing after the
	// configured retries, or fails fast because its circuit breaker is
	// open. Front ends map it to 503: the mediator is healthy, one of its
	// stores is not.
	ErrStoreUnavailable = errors.New("service: store unavailable")
	// ErrStoreTimeout is returned when a store stalled past the query's
	// deadline (the stall was cancelled by the context, not served). Front
	// ends map it to 504 with the store attributed in the message.
	ErrStoreTimeout = errors.New("service: store timeout")
)
