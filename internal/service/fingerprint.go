// Package service is ESTOCADA's concurrent mediator runtime: the layer
// between network clients and core.System that the paper assumes but does
// not describe. It provides sessions, a shared sharded rewriting cache
// with single-flight PACB on cold misses and epoch-based invalidation,
// query fingerprinting (so queries differing only in literals share one
// cached rewriting, executed through the core.Prepared bind path),
// admission control with bounded in-flight executions and per-query
// timeouts, and race-correct per-query/per-store metrics.
package service

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pivot"
	"repro/internal/value"
)

// Fingerprint is the canonical, parameterized form of a conjunctive
// query. Two queries that differ only in constant literals, variable
// names, or (shape-distinguishable) body atom order share a Key — and
// therefore one cached rewriting.
type Fingerprint struct {
	// Key is the canonical text; the cache index.
	Key string
	// Query is the canonical parameterized query: head predicate "Q",
	// variables renamed V0, V1, …, body constants replaced by parameter
	// variables P0, P1, … . Parameters not already in the head are
	// appended, so the whole parameter list is bindable through
	// core.Prepare.
	Query pivot.CQ
	// Params lists the parameter variables in numbering order.
	Params []pivot.Var
	// Args holds this instance's constant values, aligned with Params.
	Args []value.Value
	// OutWidth is the original head arity: execution binds Params, runs
	// the canonical query, and keeps the first OutWidth result columns
	// (any appended parameter columns are constant and dropped).
	OutWidth int
}

// Canonicalize computes a query's fingerprint.
//
// The normal form is reached in three steps: (1) body atoms are sorted by
// a name-free shape key (predicate, arity, const/var pattern with
// constant values), so atom order stops mattering wherever shapes differ;
// (2) variables are renamed V0, V1, … by first occurrence and the sort is
// re-run with the canonical names until the order stabilizes (bounded
// refinement — a heuristic, not perfect graph canonicalization: two
// queries that are isomorphic only via a permutation of shape-identical
// atoms may still fingerprint apart, costing a duplicate cache entry,
// never a wrong answer); (3) each distinct constant occurring in the body
// becomes a parameter P0, P1, … in occurrence order, with the instance's
// values recorded in Args. Head constants that also occur in the body
// map to their parameter; head-only constants stay literal (they never
// influence the rewriting search). Parameters missing from the head are
// appended so the canonical query is preparable with all parameters
// bound.
func Canonicalize(q pivot.CQ) (Fingerprint, error) {
	if err := q.Validate(); err != nil {
		return Fingerprint{}, err
	}
	body := make([]pivot.Atom, len(q.Body))
	for i, a := range q.Body {
		body[i] = a.Clone()
	}

	// Step 1: order by name-free shape.
	sort.SliceStable(body, func(i, j int) bool { return shapeKey(body[i]) < shapeKey(body[j]) })

	// Step 2: canonical variable names, refined until the order is stable.
	var rename map[pivot.Var]pivot.Var
	for pass := 0; pass < 4; pass++ {
		rename = map[pivot.Var]pivot.Var{}
		for _, a := range body {
			for _, t := range a.Args {
				if v, ok := t.(pivot.Var); ok {
					if _, seen := rename[v]; !seen {
						rename[v] = pivot.Var(fmt.Sprintf("V%d", len(rename)))
					}
				}
			}
		}
		keys := make([]string, len(body))
		for i, a := range body {
			keys[i] = renamedKey(a, rename)
		}
		if sort.StringsAreSorted(keys) {
			break
		}
		sort.SliceStable(body, func(i, j int) bool {
			return renamedKey(body[i], rename) < renamedKey(body[j], rename)
		})
	}

	// Step 3: parameterize body constants.
	paramOf := map[string]pivot.Var{} // const key → parameter variable
	var params []pivot.Var
	var args []value.Value
	mapTerm := func(t pivot.Term) pivot.Term {
		switch tt := t.(type) {
		case pivot.Var:
			return rename[tt]
		case pivot.Const:
			k := tt.Key()
			p, ok := paramOf[k]
			if !ok {
				p = pivot.Var(fmt.Sprintf("P%d", len(params)))
				paramOf[k] = p
				params = append(params, p)
				args = append(args, value.Of(tt.V))
			}
			return p
		default:
			return t
		}
	}
	canonBody := make([]pivot.Atom, len(body))
	for i, a := range body {
		cargs := make([]pivot.Term, len(a.Args))
		for j, t := range a.Args {
			cargs[j] = mapTerm(t)
		}
		canonBody[i] = pivot.Atom{Pred: a.Pred, Args: cargs}
	}

	// Canonical head: keep positions, map vars and body-backed constants;
	// head-only constants stay literal. Then append missing parameters.
	headArgs := make([]pivot.Term, 0, len(q.Head.Args)+len(params))
	inHead := map[pivot.Var]bool{}
	for _, t := range q.Head.Args {
		switch tt := t.(type) {
		case pivot.Var:
			cv := rename[tt]
			headArgs = append(headArgs, cv)
			inHead[cv] = true
		case pivot.Const:
			if p, ok := paramOf[tt.Key()]; ok {
				headArgs = append(headArgs, p)
				inHead[p] = true
			} else {
				headArgs = append(headArgs, tt)
			}
		default:
			return Fingerprint{}, fmt.Errorf("service: head of %s contains a labeled null", q.Name())
		}
	}
	for _, p := range params {
		if !inHead[p] {
			headArgs = append(headArgs, p)
		}
	}

	canon := pivot.CQ{Head: pivot.NewAtom("Q", headArgs...), Body: canonBody}
	if err := canon.Validate(); err != nil {
		return Fingerprint{}, fmt.Errorf("service: canonicalization produced an invalid query: %w", err)
	}
	return Fingerprint{
		Key:      canon.Key(),
		Query:    canon,
		Params:   params,
		Args:     args,
		OutWidth: q.Head.Arity(),
	}, nil
}

// shapeKey renders an atom with variables anonymized: the sort key that
// makes atom order canonical wherever shapes differ.
func shapeKey(a pivot.Atom) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('/')
	for _, t := range a.Args {
		switch tt := t.(type) {
		case pivot.Const:
			sb.WriteString(tt.Key())
		default:
			sb.WriteByte('?')
		}
		sb.WriteByte(',')
	}
	return sb.String()
}

// renamedKey renders an atom under a variable renaming (constants keep
// their values; parameters are not yet assigned at this stage).
func renamedKey(a pivot.Atom, rename map[pivot.Var]pivot.Var) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if v, ok := t.(pivot.Var); ok {
			sb.WriteString(rename[v].Key())
		} else {
			sb.WriteString(t.Key())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}
