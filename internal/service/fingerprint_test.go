package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pivot"
	"repro/internal/scenario"
	"repro/internal/value"
)

func v(name string) pivot.Var { return pivot.Var(name) }

func searchQuery(uid, cat string) pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QSearch", pivot.CStr(uid), pivot.CStr(cat), v("pid"), v("dur")),
		pivot.NewAtom("Orders", v("oid"), pivot.CStr(uid), v("pid"), v("amount")),
		pivot.NewAtom("Visits", pivot.CStr(uid), v("pid"), v("dur")),
		pivot.NewAtom("Products", v("pid"), pivot.CStr(cat), v("descr")))
}

func TestFingerprintVariableRenaming(t *testing.T) {
	q1 := pivot.NewCQ(
		pivot.NewAtom("Q", v("x"), v("y")),
		pivot.NewAtom("Users", v("x"), v("y"), v("z")),
		pivot.NewAtom("Orders", v("o"), v("x"), v("p"), v("a")))
	q2 := q1.Rename("zz_")
	f1, err := Canonicalize(q1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Canonicalize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Key != f2.Key {
		t.Errorf("renamed variants fingerprint apart:\n%s\n%s", f1.Key, f2.Key)
	}
}

func TestFingerprintConstantRenaming(t *testing.T) {
	// Queries differing only in literals share one fingerprint; the values
	// surface as bind arguments instead.
	f1, err := Canonicalize(searchQuery("u1", "books"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Canonicalize(searchQuery("u2", "games"))
	if err != nil {
		t.Fatal(err)
	}
	if f1.Key != f2.Key {
		t.Errorf("constant-renamed variants fingerprint apart:\n%s\n%s", f1.Key, f2.Key)
	}
	if len(f1.Args) != 2 || len(f2.Args) != 2 {
		t.Fatalf("args = %v / %v, want two parameters each", f1.Args, f2.Args)
	}
	if fmt.Sprint(f1.Args) == fmt.Sprint(f2.Args) {
		t.Error("distinct literals produced identical args")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := pivot.NewCQ(
		pivot.NewAtom("Q", v("u"), v("k"), v("val")),
		pivot.NewAtom("Prefs", v("u"), v("k"), v("val")))
	proj := pivot.NewCQ(
		pivot.NewAtom("Q", v("u")),
		pivot.NewAtom("Prefs", v("u"), v("k"), v("val")))
	shared := pivot.NewCQ( // same constant twice: parameters must unify
		pivot.NewAtom("Q", v("a"), v("b")),
		pivot.NewAtom("Prefs", v("a"), pivot.CStr("x"), v("b")),
		pivot.NewAtom("Users", v("a"), pivot.CStr("x"), v("c")))
	split := pivot.NewCQ( // distinct constants: separate parameters
		pivot.NewAtom("Q", v("a"), v("b")),
		pivot.NewAtom("Prefs", v("a"), pivot.CStr("x"), v("b")),
		pivot.NewAtom("Users", v("a"), pivot.CStr("y"), v("c")))
	keys := map[string]string{}
	for name, q := range map[string]pivot.CQ{"base": base, "proj": proj, "shared": shared, "split": split} {
		f, err := Canonicalize(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		keys[name] = f.Key
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("%s and %s share a fingerprint but differ semantically", prev, name)
		}
		seen[k] = name
	}
}

func TestFingerprintAtomOrder(t *testing.T) {
	q1 := pivot.NewCQ(
		pivot.NewAtom("Q", v("u"), v("p")),
		pivot.NewAtom("Users", v("u"), v("n"), v("c")),
		pivot.NewAtom("Orders", v("o"), v("u"), v("p"), v("a")))
	q2 := pivot.NewCQ(
		pivot.NewAtom("Q", v("u"), v("p")),
		pivot.NewAtom("Orders", v("o"), v("u"), v("p"), v("a")),
		pivot.NewAtom("Users", v("u"), v("n"), v("c")))
	f1, _ := Canonicalize(q1)
	f2, _ := Canonicalize(q2)
	if f1.Key != f2.Key {
		t.Errorf("atom order changed the fingerprint:\n%s\n%s", f1.Key, f2.Key)
	}
}

// TestFingerprintEqualQueriesRewriteIdentically is the property test: any
// two queries with equal fingerprints must produce the same rewriting
// (they prepare the same canonical parameterized query), and executing
// either through the service must give that query's own answer.
func TestFingerprintEqualQueriesRewriteIdentically(t *testing.T) {
	m := testMarketplace(t)
	variants := []pivot.CQ{
		searchQuery("u00001", "cat01"),
		searchQuery("u00002", "cat02"),
		searchQuery("u00003", "cat01").Rename("r_"),
	}
	var firstKey, firstRewriting string
	for i, q := range variants {
		f, err := Canonicalize(q)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := m.Sys.Prepare(f.Query, f.Params...)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if i == 0 {
			firstKey, firstRewriting = f.Key, prep.Rewriting().String()
			continue
		}
		if f.Key != firstKey {
			t.Errorf("variant %d fingerprints apart", i)
		}
		if got := prep.Rewriting().String(); got != firstRewriting {
			t.Errorf("variant %d rewriting differs:\n%s\n%s", i, got, firstRewriting)
		}
	}
}

// TestConstantVariantsShareCacheEntry asserts the cache-hit counter: after
// a cold miss on one literal, every constant-renamed variant is a hit on
// the same entry, and each variant still gets its own (correct) answer.
func TestConstantVariantsShareCacheEntry(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	uids := []string{"u00001", "u00002", "u00003", "u00004"}
	for i, uid := range uids {
		q := pivot.NewCQ(
			pivot.NewAtom("QPrefs", pivot.CStr(uid), v("k"), v("val")),
			pivot.NewAtom("Prefs", pivot.CStr(uid), v("k"), v("val")))
		res, err := svc.Query(ctx, q)
		if err != nil {
			t.Fatalf("uid %s: %v", uid, err)
		}
		if i == 0 && (res.CacheHit || res.Coalesced) {
			t.Error("first query should be a cold miss")
		}
		if i > 0 && !res.CacheHit {
			t.Errorf("uid %s: constant-renamed variant missed the cache", uid)
		}
		// Cross-check rows against the unmediated core answer.
		direct, err := m.Sys.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rowKeys(res), rowKeysTuples(direct.Rows); got != want {
			t.Errorf("uid %s: service rows %s != core rows %s", uid, got, want)
		}
	}
	snap := svc.Snapshot()
	if snap.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1 (single shared entry)", snap.CacheMisses)
	}
	if snap.CacheHits != int64(len(uids)-1) {
		t.Errorf("hits = %d, want %d", snap.CacheHits, len(uids)-1)
	}
	if snap.CacheEntries != 1 {
		t.Errorf("cache entries = %d, want 1", snap.CacheEntries)
	}
}

func rowKeys(res *Result) string { return rowKeysTuples(res.Rows) }

// rowKeysTuples renders a set-semantics signature of a result: sorted
// distinct tuple keys.
func rowKeysTuples(rows []value.Tuple) string {
	keys := make([]string, 0, len(rows))
	seen := map[string]bool{}
	for _, r := range rows {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func testMarketplace(t testing.TB) *scenario.Marketplace {
	t.Helper()
	cfg := datagen.MarketplaceConfig{
		Seed: 7, Users: 60, Products: 30, OrdersPerUser: 3,
		VisitsPerUser: 4, PrefsPerUser: 2, CartItemsPerUser: 2, ZipfS: 1.2,
	}
	m, err := scenario.New(cfg, scenario.Materialized)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
