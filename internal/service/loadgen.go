package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/pivot"
)

// Closed-loop load generator: each simulated client opens a session and
// issues its next query the moment the previous one returns — the
// throughput-measurement harness for BenchmarkServiceThroughput_*.

// LoadResult aggregates one load-generation run.
type LoadResult struct {
	Clients int
	Ops     int
	Errors  int
	Elapsed time.Duration
}

// QPS returns achieved queries per second.
func (r LoadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunClosedLoop drives clients concurrent sessions, each issuing
// opsPerClient queries back to back. next picks the query for a given
// (client, op) pair — deterministic traffic mixes (hot/cold ratios,
// parameter rotation) are encoded there. The first error per client is
// counted, not returned; the run always completes.
func RunClosedLoop(ctx context.Context, svc *Service, clients, opsPerClient int, next func(client, op int) pivot.CQ) LoadResult {
	var wg sync.WaitGroup
	errCh := make(chan int, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			sess := svc.NewSession()
			defer sess.Close()
			errs := 0
			for op := 0; op < opsPerClient; op++ {
				if _, err := sess.Query(ctx, next(client, op)); err != nil {
					errs++
				}
			}
			errCh <- errs
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	total := 0
	for e := range errCh {
		total += e
	}
	return LoadResult{
		Clients: clients,
		Ops:     clients * opsPerClient,
		Errors:  total,
		Elapsed: elapsed,
	}
}
