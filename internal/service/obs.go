package service

import (
	"time"

	"repro/internal/engines/engine"
	"repro/internal/obs"
)

// Query phases observed into the per-phase latency histogram. The
// breakdown telescopes the request: parse (surface text → CQ),
// canonicalize (fingerprinting), rewrite (cache lookup or PACB search),
// bind (plan bind + open, including retries), execute (open → first
// row), drain (first row → close).
const (
	phaseParse = iota
	phaseCanonicalize
	phaseRewrite
	phaseBind
	phaseExecute
	phaseDrain
	numPhases
)

var phaseNames = [numPhases]string{
	"parse", "canonicalize", "rewrite", "bind", "execute", "drain",
}

// fingerprintSeriesCap bounds the per-fingerprint histogram cardinality;
// workloads with more distinct shapes collapse the tail into "_other".
const fingerprintSeriesCap = 512

// svcObs holds the service's resolved instruments. The hot path touches
// only pre-resolved histogram pointers (atomic adds); everything the
// service already counts elsewhere — metrics atomics, breaker table,
// store counters, fault tallies, epochs — is exported through func-backed
// collector families read at scrape time, so there is no double
// bookkeeping and a nil svcObs (no Registry configured) costs nothing.
type svcObs struct {
	reg   *obs.Registry
	phase [numPhases]*obs.Histogram
	query *obs.Histogram
	fp    *obs.HistogramVec
}

// newSvcObs registers the service's metric families and collectors.
func newSvcObs(reg *obs.Registry, s *Service) *svcObs {
	o := &svcObs{reg: reg}

	phaseVec := reg.NewHistogram("estocada_query_phase_seconds",
		"Per-phase query latency (parse, canonicalize, rewrite, bind, execute, drain).", "phase")
	for i, name := range phaseNames {
		o.phase[i] = phaseVec.With(name)
	}
	o.query = reg.NewHistogram("estocada_query_seconds",
		"End-to-end query latency, parse to cursor close.").With()
	o.fp = reg.NewHistogram("estocada_query_fingerprint_seconds",
		"End-to-end query latency per canonical fingerprint (capped cardinality).", "fingerprint")
	o.fp.SetMaxSeries(fingerprintSeriesCap)

	// Service-level events: read straight off the metrics atomics.
	m := &s.metrics
	reg.CounterFunc("estocada_queries_total",
		"Queries admitted into the service (all surfaces).", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.queries.Load())) })
	reg.CounterFunc("estocada_cache_events_total",
		"Rewriting-cache outcomes per query.", []string{"event"},
		func(emit func([]string, float64)) {
			emit([]string{"hit"}, float64(m.hits.Load()))
			emit([]string{"coalesced"}, float64(m.coalesced.Load()))
			emit([]string{"miss"}, float64(m.misses.Load()))
		})
	reg.CounterFunc("estocada_query_failures_total",
		"Failed queries by kind (timeouts are also counted as errors).", []string{"kind"},
		func(emit func([]string, float64)) {
			emit([]string{"error"}, float64(m.errors.Load()))
			emit([]string{"timeout"}, float64(m.timeouts.Load()))
		})
	reg.CounterFunc("estocada_retries_total",
		"Execution retries after transient store faults.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.retries.Load())) })
	reg.CounterFunc("estocada_breaker_fast_fails_total",
		"Queries failed fast on an open circuit breaker.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.breakerFastFails.Load())) })
	reg.CounterFunc("estocada_rows_served_total",
		"Result rows delivered to clients.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.rowsServed.Load())) })
	reg.CounterFunc("estocada_writes_total",
		"Write batches admitted.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.writes.Load())) })
	reg.CounterFunc("estocada_rows_written_total",
		"Base rows inserted plus deleted.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.rowsWritten.Load())) })
	reg.GaugeFunc("estocada_in_flight",
		"Queries currently executing (open cursors included).", nil,
		func(emit func([]string, float64)) { emit(nil, float64(m.inFlight.Load())) })
	reg.GaugeFunc("estocada_cache_entries",
		"Rewriting-cache entries resident.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(s.cache.len())) })
	reg.GaugeFunc("estocada_sessions",
		"Registered sessions.", nil,
		func(emit func([]string, float64)) {
			s.sessMu.Lock()
			n := len(s.sessions)
			s.sessMu.Unlock()
			emit(nil, float64(n))
		})
	reg.GaugeFunc("estocada_statements",
		"Registered prepared statements.", nil,
		func(emit func([]string, float64)) {
			s.stmtMu.Lock()
			n := len(s.stmts)
			s.stmtMu.Unlock()
			emit(nil, float64(n))
		})

	// Degradation plane: breaker states and fault-injector tallies. Every
	// store gets a series even while healthy (Breakers() only lists stores
	// with recorded failures — absent means closed).
	engines := s.sys.Stores.All()
	reg.GaugeFunc("estocada_breaker_open",
		"1 while the store's circuit breaker fails queries fast.", []string{"store"},
		func(emit func([]string, float64)) {
			brk := s.Breakers()
			for _, e := range engines {
				v := 0.0
				if brk[e.Name()].Open {
					v = 1
				}
				emit([]string{e.Name()}, v)
			}
		})
	reg.GaugeFunc("estocada_breaker_failures",
		"Consecutive attributed failures (saturates at the threshold).", []string{"store"},
		func(emit func([]string, float64)) {
			brk := s.Breakers()
			for _, e := range engines {
				emit([]string{e.Name()}, float64(brk[e.Name()].ConsecutiveFailures))
			}
		})
	reg.CounterFunc("estocada_breaker_trips_total",
		"Distinct breaker open transitions.", []string{"store"},
		func(emit func([]string, float64)) {
			brk := s.Breakers()
			for _, e := range engines {
				emit([]string{e.Name()}, float64(brk[e.Name()].Trips))
			}
		})

	// Per-store plane: operation counters, fault injections, and the
	// latency histograms the stores own (attached, not copied).
	reg.CounterFunc("estocada_store_ops_total",
		"Store operations by kind (requests, scans, lookups, tuples).", []string{"store", "op"},
		func(emit func([]string, float64)) {
			for _, e := range engines {
				c := e.Counters().Snapshot()
				name := e.Name()
				emit([]string{name, "requests"}, float64(c.Requests))
				emit([]string{name, "scans"}, float64(c.Scans))
				emit([]string{name, "lookups"}, float64(c.Lookups))
				emit([]string{name, "tuples"}, float64(c.Tuples))
			}
		})
	reg.CounterFunc("estocada_fault_injected_total",
		"Faults the per-store injectors fired.", []string{"store", "kind"},
		func(emit func([]string, float64)) {
			for _, e := range engines {
				snap := e.Fault().Snapshot()
				emit([]string{e.Name(), "read"}, float64(snap.InjectedReads))
				emit([]string{e.Name(), "write"}, float64(snap.InjectedWrites))
			}
		})
	storeHist := reg.NewHistogram("estocada_store_latency_seconds",
		"Per-request store access latency, measured around each delegated access.", "store")
	for _, e := range engines {
		if lh, ok := e.(interface{ LatencyHistogram() *obs.Histogram }); ok {
			storeHist.Attach(lh.LatencyHistogram(), e.Name())
		}
	}

	// Planner plane: drift-triggered lazy re-plans and the cost-based
	// plan-choice latency histogram (owned by core, attached here).
	reg.CounterFunc("estocada_replans_total",
		"Lazy re-plans triggered by data-epoch cardinality drift.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(s.sys.Replans())) })
	reg.NewHistogram("estocada_plan_seconds",
		"Cost-based plan choice latency (cold misses, prepares, re-plans).").
		Attach(s.sys.PlanSeconds())

	// Epochs: catalog generation (plan invalidation) vs data generation.
	reg.GaugeFunc("estocada_catalog_epoch",
		"Catalog generation; cached plans older than it re-prepare.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(s.sys.CacheEpoch())) })
	reg.GaugeFunc("estocada_data_epoch",
		"Data generation; advances on DML and fragment reloads.", nil,
		func(emit func([]string, float64)) { emit(nil, float64(s.sys.DataEpoch())) })

	return o
}

// observe records one finished query's phase breakdown and total latency.
// Called from Rows.Close on the nil-checked fast path; every observation
// is an atomic add into a pre-resolved histogram.
func (o *svcObs) observe(r *Rows, total time.Duration) {
	if r.parseTime > 0 {
		o.phase[phaseParse].Observe(r.parseTime)
	}
	o.phase[phaseCanonicalize].Observe(r.canonTime)
	o.phase[phaseRewrite].Observe(r.planTime)
	o.phase[phaseBind].Observe(r.bindTime)
	execute, drain := r.splitExec()
	o.phase[phaseExecute].Observe(execute)
	o.phase[phaseDrain].Observe(drain)
	o.query.Observe(total)
	o.fp.Get1(r.fingerprint).Observe(total)
}

// Registry returns the metrics registry the service exports into (nil
// when Options.Registry was not configured).
func (s *Service) Registry() *obs.Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// Stats is the consistent introspection snapshot behind /stats: the
// service metrics, every store's operation counters, the circuit-breaker
// table, and the two epochs, all read in one call instead of piecemeal.
//
// Shape (JSON):
//
//	{
//	  "service":  {"queries":…, "cacheHits":…, "coalesced":…, "cacheMisses":…,
//	               "errors":…, "timeouts":…, "inFlight":…, "rowsServed":…,
//	               "writes":…, "rowsWritten":…, "retries":…, "breakerFastFails":…,
//	               "cacheEntries":…, "sessions":…, "statements":…},
//	  "stores":   {"<store>": {"requests":…, "scans":…, "lookups":…, "tuples":…}, …},
//	  "breakers": {"<store>": {"consecutiveFailures":…, "open":…, "trips":…}, …},
//	  "catalogEpoch": …,
//	  "dataEpoch": …
//	}
//
// The counters are individually atomic but the snapshot is not a single
// transaction: a query finishing concurrently may appear in some counters
// and not others. Within one store's CounterSnapshot the same holds — see
// the torn-read note on engine.Counters.Snapshot.
type Stats struct {
	Service      MetricsSnapshot                   `json:"service"`
	Stores       map[string]engine.CounterSnapshot `json:"stores"`
	Breakers     map[string]BreakerState           `json:"breakers"`
	CatalogEpoch uint64                            `json:"catalogEpoch"`
	DataEpoch    uint64                            `json:"dataEpoch"`
}

// Stats takes the consistent introspection snapshot.
func (s *Service) Stats() Stats {
	stores := map[string]engine.CounterSnapshot{}
	for _, e := range s.sys.Stores.All() {
		stores[e.Name()] = e.Counters().Snapshot()
	}
	return Stats{
		Service:      s.Snapshot(),
		Stores:       stores,
		Breakers:     s.Breakers(),
		CatalogEpoch: s.sys.CacheEpoch(),
		DataEpoch:    s.sys.DataEpoch(),
	}
}
