package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/pivot"
	"repro/internal/scenario"
)

// cartQuery is a KV-touching shape (Carts lives in the kv store in the
// materialized variant), so profiled plans show bind-join attribution.
func cartQuery(uid string) pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QCart", pivot.CStr(uid), v("pid"), v("qty")),
		pivot.NewAtom("Carts", pivot.CStr(uid), v("pid"), v("qty")))
}

// TestPhaseHistogramsObserved: a query through a Registry-configured
// service must land one observation in every phase histogram, the
// end-to-end histogram, and the per-fingerprint vec — and the exposition
// must be valid Prometheus text format.
func TestPhaseHistogramsObserved(t *testing.T) {
	m := testMarketplace(t)
	reg := obs.NewRegistry()
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema, Registry: reg})

	if _, err := svc.QueryText(context.Background(), "sql",
		"SELECT u.name FROM Users u WHERE u.city = 'city03'"); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, phase := range phaseNames {
		want := `estocada_query_phase_seconds_count{phase="` + phase + `"} 1`
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
	if !strings.Contains(text, "estocada_query_seconds_count 1") {
		t.Error("missing end-to-end histogram observation")
	}
	if !strings.Contains(text, `estocada_query_fingerprint_seconds_count{fingerprint=`) {
		t.Error("missing per-fingerprint histogram observation")
	}
	// Store latency histograms are attached store-owned instruments; the
	// SQL query touched at least the relational store.
	if !strings.Contains(text, `estocada_store_latency_seconds_count{store=`) {
		t.Error("missing per-store latency histograms")
	}
	if !strings.Contains(text, "estocada_queries_total 1") {
		t.Error("missing service query counter")
	}
}

// TestSlowQueryLogRecords: with a zero-ish threshold every query is
// "slow"; the entry must carry the request ID from the context, the
// fingerprint, a telescoping phase breakdown, and — when profiled — the
// operator tree.
func TestSlowQueryLogRecords(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema, SlowQueryThreshold: time.Nanosecond})

	ctx := obs.WithProfile(obs.WithRequestID(context.Background(), "req-test-42"))
	if _, err := svc.Query(ctx, cartQuery("u00007")); err != nil {
		t.Fatal(err)
	}

	entries := svc.SlowQueries()
	if len(entries) != 1 {
		t.Fatalf("slow log entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.RequestID != "req-test-42" {
		t.Errorf("RequestID = %q", e.RequestID)
	}
	if e.Fingerprint == "" || e.Rows == 0 {
		t.Errorf("entry incomplete: %+v", e)
	}
	if len(e.Phases) < numPhases-1 { // parse absent for the CQ value surface
		t.Errorf("phases = %v", e.Phases)
	}
	for i := 1; i < len(e.Phases); i++ {
		if e.Phases[i].Offset < e.Phases[i-1].Offset {
			t.Errorf("phase offsets not telescoping: %v", e.Phases)
		}
	}
	if e.Profile == nil {
		t.Error("profiled query lost its operator tree")
	}
	if e.Error != "" {
		t.Errorf("unexpected error %q", e.Error)
	}
}

// TestSlowQueryLogRetainsFailures: failed queries land in the log even
// under a high threshold, with the error recorded.
func TestSlowQueryLogRetainsFailures(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema, SlowQueryThreshold: time.Hour, MaxResultRows: 1})

	// Visits scan delivers more than 1 row → ErrResultTruncated at close.
	_, err := svc.QueryText(context.Background(), "cq", "Q(u, p, d) :- Visits(u, p, d)")
	if err == nil {
		t.Fatal("expected truncation error")
	}
	entries := svc.SlowQueries()
	if len(entries) != 1 || entries[0].Error == "" {
		t.Fatalf("failure not retained: %+v", entries)
	}
}

// TestSlowLogRing: the ring keeps the newest entries and reports them
// newest first.
func TestSlowLogRing(t *testing.T) {
	l := newSlowLog(3)
	for i := 0; i < 5; i++ {
		l.add(SlowQuery{DurationUs: int64(i)})
	}
	got := l.entries()
	if len(got) != 3 || got[0].DurationUs != 4 || got[2].DurationUs != 2 {
		t.Fatalf("ring entries = %+v", got)
	}
}

// TestStatsSnapshot: the consistent snapshot carries all four planes.
func TestStatsSnapshot(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema})
	if _, err := svc.Query(context.Background(), cartQuery("u00007")); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Service.Queries != 1 {
		t.Errorf("Service.Queries = %d", st.Service.Queries)
	}
	if len(st.Stores) == 0 {
		t.Error("no store counters in snapshot")
	}
	var touched bool
	for _, c := range st.Stores {
		if c.Requests > 0 {
			touched = true
		}
	}
	if !touched {
		t.Error("no store shows work after a query")
	}
	if st.CatalogEpoch != m.Sys.CacheEpoch() || st.DataEpoch != m.Sys.DataEpoch() {
		t.Error("epoch mismatch")
	}
	if st.Breakers == nil {
		t.Error("nil breaker map")
	}
}

// flattenProfile collects every operator label of the tree.
func flattenProfile(p *exec.OpProfile) []string {
	out := []string{p.Op}
	for _, c := range p.Children {
		out = append(out, flattenProfile(c)...)
	}
	return out
}

// TestProfiledServiceQuery: obs.WithProfile on the service surface yields
// an operator tree on the cursor, with every operator carrying row and
// batch counts, and store attribution on leaf accesses.
func TestProfiledServiceQuery(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema})

	rows, err := svc.QueryRows(obs.WithProfile(context.Background()), cartQuery("u00007"))
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	p := rows.Profile()
	if p == nil {
		t.Fatal("no profile on profiled cursor")
	}
	if p.Rows != rows.RowsServed() {
		t.Errorf("root rows = %d, served %d", p.Rows, rows.RowsServed())
	}
	ops := flattenProfile(p)
	attributed := false
	for _, label := range ops {
		if strings.Contains(label, ".access(") || strings.Contains(label, ".fetch(") {
			attributed = true
		}
	}
	if !attributed {
		t.Errorf("no store-attributed access in profile ops: %v", ops)
	}

	// Unprofiled control: no tree.
	plain, err := svc.QueryRows(context.Background(), cartQuery("u00008"))
	if err != nil {
		t.Fatal(err)
	}
	plain.Close()
	if plain.Profile() != nil {
		t.Error("unprofiled cursor has a profile")
	}
}
