package service

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/engines/engine"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/translate"
	"repro/internal/value"
	"repro/internal/workload"
)

// Rows is the streaming result of one service query: a cursor over the
// plan's execution that holds the query's resources — the admission slot,
// the in-flight gauge, and the timeout context — for the cursor's
// lifetime, not the call that opened it. The admission semaphore
// therefore bounds live executor state, not merely time-to-first-byte.
// Close is mandatory (and idempotent); abandoning a cursor leaks its
// slot until the owner's TTL reaper closes it.
//
// Iteration mirrors exec.Rows: Next/Tuple row at a time, NextChunk a
// drained batch at a time (the granularity network front ends flush on).
// Appended parameter columns of the canonical query are trimmed off, so
// consumers see the original head width. A Rows is single-goroutine.
type Rows struct {
	svc  *Service
	sess *Session
	cur  *core.Rows
	// base is the caller's context; cancel ends the derived timeout
	// context (released at Close).
	base   context.Context
	cancel context.CancelFunc

	// fp is the full canonical fingerprint (shape + params), recorded
	// into the workload accountant at Close; fingerprint is its key.
	fp          Fingerprint
	fingerprint string
	cacheHit    bool
	coalesced   bool

	// Phase breakdown: parse and canonicalize ran before openRows,
	// planTime covers the cache/rewrite stage, bindTime the plan bind and
	// open (retries included), firstRow is execStart → the first row
	// surfacing (stamped by Next/NextChunk), execTime is execStart →
	// Close. openedAt anchors the end-to-end total.
	openedAt  time.Time
	parseTime time.Duration
	canonTime time.Duration
	planTime  time.Duration
	bindTime  time.Duration
	firstRow  time.Duration
	execStart time.Time
	execTime  time.Duration
	perStore  map[string]engine.CounterSnapshot

	width    int // canonical head arity (cursor row width)
	outWidth int // original head arity (delivered row width)

	limit   int64 // max rows delivered (0 = unbounded); overflow → ErrResultTruncated
	n       int64
	capped  bool // a chunk was cut at the limit; next call fails
	scratch []value.Tuple

	tup    value.Tuple
	err    error
	closed bool
}

// Fingerprint is the canonical cache key the query normalized to.
func (r *Rows) Fingerprint() string { return r.fingerprint }

// CacheHit reports whether the rewriting came from a ready cache entry.
func (r *Rows) CacheHit() bool { return r.cacheHit }

// Coalesced reports whether this query waited on a concurrent caller's
// rewrite of the same fingerprint.
func (r *Rows) Coalesced() bool { return r.coalesced }

// PlanTime covers fingerprinting plus the cache/rewrite stage.
func (r *Rows) PlanTime() time.Duration { return r.planTime }

// ExecTime covers execution from admission to Close (valid after Close).
func (r *Rows) ExecTime() time.Duration { return r.execTime }

// PerStore is the exact per-store work of this execution (complete after
// Close).
func (r *Rows) PerStore() map[string]engine.CounterSnapshot {
	if r.closed {
		return r.perStore
	}
	return r.cur.PerStore()
}

// RowsServed counts the rows delivered so far.
func (r *Rows) RowsServed() int64 { return r.n }

// Columns names the delivered columns (canonical variable names, trimmed
// to the original head width).
func (r *Rows) Columns() []string {
	cols := r.cur.Columns()
	if r.outWidth < len(cols) {
		cols = cols[:r.outWidth]
	}
	return append([]string(nil), cols...)
}

// Limit tightens the row cap for this cursor (a LIMIT-style guard: after
// n rows the stream ends with ErrResultTruncated if more rows exist).
// Only ever lowers the configured MaxResultRows; 0 or negative is
// ignored.
func (r *Rows) Limit(n int64) {
	if n > 0 && (r.limit == 0 || n < r.limit) {
		r.limit = n
	}
}

// fail records the cursor's first error. Store-attributed failures —
// injected faults surfacing mid-stream, stalls cut short by the deadline
// — are classified into the typed sentinels here, so in-band stream
// errors carry the same taxonomy as open-time failures.
func (r *Rows) fail(err error) {
	if r.err == nil {
		r.err = classifyStoreError(err)
	}
}

// Next advances to the next row. After it returns false, Err
// distinguishes exhaustion (nil) from failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.capped || (r.limit > 0 && r.n >= r.limit) {
		// Cap reached: fail only if the stream actually had more rows.
		if r.capped || r.cur.Next() {
			r.fail(ErrResultTruncated)
		} else if err := r.cur.Err(); err != nil {
			r.fail(err)
		}
		r.tup = nil
		return false
	}
	if !r.cur.Next() {
		if err := r.cur.Err(); err != nil {
			r.fail(err)
		}
		r.tup = nil
		return false
	}
	t := r.cur.Tuple()
	if r.outWidth < len(t) {
		t = t[:r.outWidth]
	}
	r.tup = t
	if r.n == 0 {
		r.firstRow = time.Since(r.execStart)
	}
	r.n++
	return true
}

// Tuple returns the current row (nil before the first Next or after
// exhaustion).
func (r *Rows) Tuple() value.Tuple { return r.tup }

// NextChunk returns the next drained batch of rows, (nil, nil) on
// exhaustion, or (nil, err) on failure. The slice is valid only until
// the next cursor call; streaming consumers encode it, flush, then ask
// for more — that is the once-per-batch flush cadence of the NDJSON
// endpoint.
func (r *Rows) NextChunk() ([]value.Tuple, error) {
	if r.closed || r.err != nil {
		return nil, r.err
	}
	if r.capped {
		r.fail(ErrResultTruncated)
		return nil, r.err
	}
	chunk, err := r.cur.NextChunk()
	if err != nil {
		r.fail(err)
		return nil, r.err
	}
	if chunk == nil {
		return nil, nil
	}
	if r.limit > 0 && r.n+int64(len(chunk)) > r.limit {
		keep := int(r.limit - r.n)
		r.capped = true
		if keep == 0 {
			r.fail(ErrResultTruncated)
			return nil, r.err
		}
		chunk = chunk[:keep]
	}
	if r.outWidth < r.width {
		if cap(r.scratch) < len(chunk) {
			r.scratch = make([]value.Tuple, len(chunk))
		}
		s := r.scratch[:len(chunk)]
		for i, t := range chunk {
			if r.outWidth < len(t) {
				t = t[:r.outWidth]
			}
			s[i] = t
		}
		chunk = s
	}
	if r.n == 0 && len(chunk) > 0 {
		r.firstRow = time.Since(r.execStart)
	}
	r.n += int64(len(chunk))
	return chunk, nil
}

// Err returns the first error the cursor encountered (nil after a clean
// exhaustion).
func (r *Rows) Err() error { return r.err }

// Profile renders the per-operator EXPLAIN ANALYZE tree, or nil when the
// query did not run under obs.WithProfile. Complete once the cursor is
// drained or closed.
func (r *Rows) Profile() *exec.OpProfile { return r.cur.Profile() }

// Planner reports the planner's provenance for the executed plan — clause
// order, per-clause scores, operator choices (bind vs hash, build side),
// and the stats epoch the plan was costed under. Nil when unavailable.
func (r *Rows) Planner() *translate.Provenance { return r.cur.PlanProvenance() }

// splitExec decomposes the post-bind execution time into execute
// (time-to-first-row) and drain (the remainder). A query that delivered
// no rows spent everything executing.
func (r *Rows) splitExec() (execute, drain time.Duration) {
	tail := r.execTime - r.bindTime
	if tail < 0 {
		tail = 0
	}
	if r.firstRow == 0 {
		return tail, 0
	}
	execute = r.firstRow - r.bindTime
	if execute < 0 {
		execute = 0
	}
	if drain = tail - execute; drain < 0 {
		drain = 0
	}
	return execute, drain
}

// Close releases everything the cursor holds: the execution's iterators
// and pooled batches, the admission slot, the in-flight gauge, and the
// timeout context. It finalizes the query's metrics (rows served,
// errors, timeouts). Idempotent; returns the cursor's first error.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.tup = nil
	r.cur.Close()
	r.execTime = time.Since(r.execStart)
	r.perStore = r.cur.PerStore()
	r.svc.noteStoreOutcome(r.perStore, r.err)
	r.svc.metrics.inFlight.Add(-1)
	<-r.svc.sem
	if r.cancel != nil {
		r.cancel()
	}
	r.svc.metrics.rowsServed.Add(r.n)
	if r.sess != nil {
		r.sess.rows.Add(r.n)
		r.sess.lastUse.Store(time.Now().UnixNano())
	}
	if r.err != nil {
		r.svc.metrics.errors.Add(1)
		if r.base.Err() != nil || errors.Is(r.err, context.DeadlineExceeded) || errors.Is(r.err, context.Canceled) {
			r.svc.metrics.timeouts.Add(1)
		}
		if r.sess != nil {
			r.sess.errors.Add(1)
		}
	}
	total := r.parseTime + r.canonTime + time.Since(r.openedAt)
	if o := r.svc.obs; o != nil {
		o.observe(r, total)
	}
	r.recordWorkload(total)
	r.traceSpans(total)
	if sl := r.svc.slow; sl != nil &&
		(r.err != nil || (r.svc.opts.SlowQueryThreshold > 0 && total >= r.svc.opts.SlowQueryThreshold)) {
		sl.record(r, total)
	}
	return r.err
}

// recordWorkload folds the finished query into the always-on workload
// accountant: counts, phase latencies, per-store work, and the executed
// plan's per-fragment cost attribution.
func (r *Rows) recordWorkload(total time.Duration) {
	execute, drain := r.splitExec()
	r.svc.workload.Record(workload.Sample{
		Fingerprint: r.fingerprint,
		Query:       r.fp.Query,
		Params:      r.fp.Params,
		Err:         r.err != nil,
		Rows:        r.n,
		Total:       total,
		Phases: [workload.NumPhases]time.Duration{
			r.parseTime, r.canonTime, r.planTime, r.bindTime, execute, drain,
		},
		PerStore: r.perStore,
		Prov:     r.cur.PlanProvenance(),
	})
}

// traceSpans emits the query's phase breakdown into the request trace
// (no-op for untraced requests): a service.query span under the request
// root with one child per pipeline phase, plus the trace-level error.
func (r *Rows) traceSpans(total time.Duration) {
	tr := obs.TraceFrom(r.base)
	if tr == nil {
		return
	}
	start := r.openedAt.Add(-(r.parseTime + r.canonTime))
	parent := tr.Add("service.query", tr.Root(), start, total)
	execute, drain := r.splitExec()
	phases := [numPhases]time.Duration{
		r.parseTime, r.canonTime, r.planTime, r.bindTime, execute, drain,
	}
	at := start
	for i, d := range phases {
		if i == phaseParse && d == 0 {
			continue // query arrived pre-parsed (CQ value surface)
		}
		tr.Add(phaseNames[i], parent, at, d)
		at = at.Add(d)
	}
	if r.err != nil {
		tr.SetError(r.err.Error())
	}
}

// Materialize drains the cursor into the legacy slice-backed Result and
// closes it — the compatibility wrapper Query is built on.
func (r *Rows) Materialize() (*Result, error) {
	var rows []value.Tuple
	for {
		chunk, err := r.NextChunk()
		if err != nil {
			r.Close()
			return nil, err
		}
		if chunk == nil {
			break
		}
		rows = append(rows, chunk...)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return &Result{
		Rows:        rows,
		Fingerprint: r.fingerprint,
		CacheHit:    r.cacheHit,
		Coalesced:   r.coalesced,
		PlanTime:    r.planTime,
		ExecTime:    r.execTime,
		PerStore:    r.perStore,
	}, nil
}
