package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/scenario"
	"repro/internal/value"
)

// The cursor path must agree with the materializing path row for row,
// including the parameter-column trimming.
func TestQueryRowsMatchesQuery(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	queries := []pivot.CQ{
		pivot.NewCQ(
			pivot.NewAtom("QPrefs", pivot.CStr("u00001"), v("k"), v("val")),
			pivot.NewAtom("Prefs", pivot.CStr("u00001"), v("k"), v("val"))),
		searchQuery("u00005", "cat02"),
	}
	for i, q := range queries {
		want, err := svc.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		r, err := svc.QueryRows(ctx, q)
		if err != nil {
			t.Fatalf("queryRows %d: %v", i, err)
		}
		if len(r.Columns()) != q.Head.Arity() {
			t.Errorf("query %d: %d columns for head arity %d", i, len(r.Columns()), q.Head.Arity())
		}
		var got []value.Tuple
		for r.Next() {
			if len(r.Tuple()) != q.Head.Arity() {
				t.Fatalf("query %d: cursor row has %d columns, head arity %d", i, len(r.Tuple()), q.Head.Arity())
			}
			got = append(got, r.Tuple())
		}
		if err := r.Close(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if rowKeysTuples(got) != rowKeysTuples(want.Rows) {
			t.Errorf("query %d: cursor and materialized disagree\ncursor: %s\nmat:    %s",
				i, rowKeysTuples(got), rowKeysTuples(want.Rows))
		}
		if r.RowsServed() != int64(len(got)) {
			t.Errorf("query %d: RowsServed = %d, want %d", i, r.RowsServed(), len(got))
		}
		if len(r.PerStore()) == 0 {
			t.Errorf("query %d: no per-store attribution", i)
		}
		if r.ExecTime() <= 0 {
			t.Errorf("query %d: ExecTime not stamped at Close", i)
		}
	}
}

// The admission slot must be held for the CURSOR's lifetime: an open
// cursor occupies it, Close releases it.
func TestCursorHoldsAdmissionSlot(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{MaxInFlight: 1})
	ctx := context.Background()

	q := pivot.NewCQ(
		pivot.NewAtom("QPrefs", pivot.CStr("u00001"), v("k"), v("val")),
		pivot.NewAtom("Prefs", pivot.CStr("u00001"), v("k"), v("val")))

	r, err := svc.QueryRows(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Snapshot().InFlight; got != 1 {
		t.Errorf("in-flight gauge = %d with an open cursor, want 1", got)
	}

	// While the cursor is open, the only slot is taken: a second query
	// must time out in admission.
	ctx2, cancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel2()
	if _, err := svc.Query(ctx2, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second query err = %v, want deadline exceeded (slot held by cursor)", err)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Snapshot().InFlight; got != 0 {
		t.Errorf("in-flight gauge = %d after Close, want 0", got)
	}
	if _, err := svc.Query(ctx, q); err != nil {
		t.Fatalf("query after Close: %v (slot not released?)", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// MaxResultRows: the materializing path fails typed instead of buffering
// without bound; the cursor delivers exactly the cap, then surfaces
// ErrResultTruncated in-band only if more rows existed.
func TestMaxResultRows(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{MaxResultRows: 10})
	ctx := context.Background()

	scan := pivot.NewCQ(
		pivot.NewAtom("QAll", v("u"), v("n"), v("c")),
		pivot.NewAtom("Users", v("u"), v("n"), v("c"))) // 60 users ≫ 10

	if _, err := svc.Query(ctx, scan); !errors.Is(err, ErrResultTruncated) {
		t.Fatalf("materializing over-cap query err = %v, want ErrResultTruncated", err)
	}

	r, err := svc.QueryRows(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for r.Next() {
		n++
	}
	if n != 10 {
		t.Errorf("cursor delivered %d rows, want exactly the cap (10)", n)
	}
	if !errors.Is(r.Err(), ErrResultTruncated) {
		t.Errorf("cursor Err = %v, want ErrResultTruncated", r.Err())
	}
	r.Close()

	// Under the cap: no truncation.
	small := pivot.NewCQ(
		pivot.NewAtom("QPrefs", pivot.CStr("u00001"), v("k"), v("val")),
		pivot.NewAtom("Prefs", pivot.CStr("u00001"), v("k"), v("val")))
	res, err := svc.Query(ctx, small)
	if err != nil {
		t.Fatalf("under-cap query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("under-cap query returned nothing")
	}

	// Limit tightens per cursor but never loosens past MaxResultRows.
	r2, err := svc.QueryRows(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	r2.Limit(3)
	r2.Limit(100) // no-op: cannot loosen
	n = 0
	for r2.Next() {
		n++
	}
	if n != 3 || !errors.Is(r2.Err(), ErrResultTruncated) {
		t.Errorf("tightened cursor: %d rows, err %v", n, r2.Err())
	}
	r2.Close()
}

// Parse and language failures surface as the typed sentinels front ends
// map to status codes.
func TestTypedTextErrors(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema})
	ctx := context.Background()

	if _, err := svc.QueryText(ctx, "sql", "SELECT FROM nonsense !!"); !errors.Is(err, ErrParse) {
		t.Errorf("bad sql err = %v, want ErrParse", err)
	}
	if _, err := svc.QueryText(ctx, "graphql", "{}"); !errors.Is(err, ErrUnknownLanguage) {
		t.Errorf("unknown language err = %v, want ErrUnknownLanguage", err)
	}
	bare := New(m.Sys, Options{})
	if _, err := bare.QueryText(ctx, "sql", "SELECT u.name FROM Users u"); !errors.Is(err, ErrNoSchema) {
		t.Errorf("schema-less sql err = %v, want ErrNoSchema", err)
	}
}

// bigScanService builds a service over one wide relational fragment with
// nRows rows — the streaming-memory fixture.
func bigScanService(t testing.TB, nRows int) *Service {
	t.Helper()
	sys := core.New(core.Options{})
	sys.AddRelStore("rel")
	vars := []pivot.Term{pivot.Var("x"), pivot.Var("y"), pivot.Var("z")}
	view := rewrite.NewView("FBig", pivot.NewCQ(
		pivot.NewAtom("FBig", vars...),
		pivot.NewAtom("Big", vars...)))
	if err := sys.RegisterFragment(&catalog.Fragment{
		Name: "FBig", Dataset: "bench", View: view, Store: "rel",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "big",
			Columns: []string{"x", "y", "z"}},
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]value.Tuple, nRows)
	for i := range rows {
		rows[i] = value.TupleOf(fmt.Sprintf("k%07d", i), i, i%97)
	}
	if err := sys.Materialize("FBig", rows); err != nil {
		t.Fatal(err)
	}
	return New(sys, Options{MaxInFlight: 4})
}

func bigScanQuery() pivot.CQ {
	return pivot.NewCQ(
		pivot.NewAtom("QBig", v("x"), v("y"), v("z")),
		pivot.NewAtom("Big", v("x"), v("y"), v("z")))
}

// The streaming path must never materialize the full result: draining a
// 50k-row scan through the cursor allocates a small constant amount
// (batches are pooled and recycled), far below what the materializing
// path allocates, and no chunk ever exceeds one batch.
func TestStreamConstantMemory(t *testing.T) {
	const nRows = 50_000
	svc := bigScanService(t, nRows)
	ctx := context.Background()
	q := bigScanQuery()

	// Warm: rewrite cached, pools populated, result verified once.
	warm, err := svc.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Rows) != nRows {
		t.Fatalf("scan returned %d rows, want %d", len(warm.Rows), nRows)
	}

	// Resident-memory assertion: measure the live heap RETAINED by each
	// path (per-batch arenas are abandoned by design and collected, so
	// cumulative TotalAlloc would not distinguish streaming from
	// buffering — what matters is what stays resident).
	liveRetained := func(f func() any) int64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		keep := f()
		runtime.GC()
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(keep)
		return int64(after.HeapAlloc) - int64(before.HeapAlloc)
	}

	streamLive := liveRetained(func() any {
		r, err := svc.QueryRows(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			chunk, err := r.NextChunk()
			if err != nil {
				t.Fatal(err)
			}
			if chunk == nil {
				break
			}
			if len(chunk) > value.BatchCap {
				t.Fatalf("chunk of %d rows exceeds one batch (%d): the cursor is buffering", len(chunk), value.BatchCap)
			}
			n += len(chunk)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if n != nRows {
			t.Fatalf("stream drained %d rows, want %d", n, nRows)
		}
		return nil // nothing retained: the whole result has been and gone
	})
	matLive := liveRetained(func() any {
		res, err := svc.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		return res // the materialized result stays resident
	})

	// The materialized result alone retains nRows tuple headers (24 B
	// each, ≥1.2 MB); a true streaming drain retains at most a few
	// pooled batches.
	if streamLive*8 > matLive {
		t.Errorf("streaming drain retained %d B live vs %d B materialized — result is being buffered", streamLive, matLive)
	}
	if streamLive > 512<<10 {
		t.Errorf("streaming drain retained %d B live, want < 512 KiB (O(1) batches)", streamLive)
	}
	t.Logf("live bytes retained: stream=%d materialized=%d", streamLive, matLive)
}

// An abandoned-then-closed cursor mid-drain must still release its slot
// and surface cancellation as a timeout metric, not hang.
func TestCursorCancelMidStream(t *testing.T) {
	svc := bigScanService(t, 50_000)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := svc.QueryRows(ctx, bigScanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Next() {
		t.Fatal("no first row")
	}
	cancel()
	for r.Next() {
	}
	if !errors.Is(r.Err(), context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", r.Err())
	}
	r.Close()
	snap := svc.Snapshot()
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after Close", snap.InFlight)
	}
	if snap.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", snap.Timeouts)
	}
}
