package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engines/engine"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/pivot"
	"repro/internal/value"
	"repro/internal/workload"
)

// Options tunes the mediator service.
type Options struct {
	// MaxInFlight bounds concurrently executing queries (admission
	// control). Queries beyond the bound wait for a slot (or their
	// context). 0 = 4×GOMAXPROCS.
	MaxInFlight int
	// QueryTimeout caps one query end to end: admission waits, coalesced
	// waits on another caller's rewrite, and execution (checked once per
	// drained batch). A cold rewrite this query LEADS runs to completion
	// regardless — its result serves the coalesced waiters — but the
	// leader's admission wait before the rewrite is bounded. 0 = none.
	QueryTimeout time.Duration
	// CacheShards is the rewriting-cache shard count. 0 = 16.
	CacheShards int
	// Schema maps logical relation names to column names for the surface
	// languages (QueryText). Nil disables text queries.
	Schema lang.Schema
	// MaxResultRows caps the rows any one query may deliver (0 = no cap).
	// A materializing Query that would exceed it fails with
	// ErrResultTruncated instead of buffering without bound; a cursor
	// delivers exactly the cap and then surfaces ErrResultTruncated
	// in-band if more rows existed.
	MaxResultRows int
	// RetryAttempts is how many times a query whose execution failed at
	// open time with a transient store fault is retried before surfacing
	// ErrStoreUnavailable. 0 = 2; negative = no retries.
	RetryAttempts int
	// RetryBackoff is the backoff before the first retry, doubled per
	// attempt and capped at 16×. 0 = 2ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive attributed failures after which
	// a store's circuit breaker opens (queries touching the store fail
	// fast with ErrStoreUnavailable). 0 = 5; negative disables breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening for a trial query. 0 = 500ms.
	BreakerCooldown time.Duration
	// Registry, when set, exports the service's metrics: per-phase and
	// per-fingerprint latency histograms, service event counters, breaker
	// gauges, per-store operation counters and latency histograms, fault
	// tallies, and the catalog/data epochs. Nil disables exposition; the
	// query path then records nothing.
	Registry *obs.Registry
	// SlowQueryThreshold retains queries at least this slow in the
	// slow-query log (failed queries are always retained). 0 = only
	// failures are logged.
	SlowQueryThreshold time.Duration
	// SlowQueryLog is the slow-query ring size. 0 = 128; negative
	// disables the log entirely.
	SlowQueryLog int
}

// Service is a concurrent mediator runtime over one core.System. All
// methods are safe for concurrent use.
type Service struct {
	sys   *core.System
	opts  Options
	cache *planCache
	sem   chan struct{}

	// prepare runs the cold path (PACB rewriting via core.Prepare).
	// Overridable in tests to count or stub rewrites.
	prepare func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error)

	// brk is the per-store circuit-breaker table of the degradation layer.
	brk *breakers

	// obs holds the resolved metric instruments (nil without a Registry);
	// slow is the slow-query ring (nil when disabled).
	obs  *svcObs
	slow *slowLog

	// workload is the always-on per-fingerprint accounting layer feeding
	// the self-tuning loop (advisor.FromWorkload, /debug/workload).
	workload *workload.Accountant

	metrics Metrics

	sessMu     sync.Mutex
	sessions   map[uint64]*Session
	nextSessID atomic.Uint64

	stmtMu     sync.Mutex
	stmts      map[uint64]*Stmt
	nextStmtID atomic.Uint64
}

// Metrics counts service-level events. All fields are atomics; read them
// through Snapshot.
type Metrics struct {
	queries     atomic.Int64 // queries admitted into Query/QueryText
	hits        atomic.Int64 // served from a ready cache entry
	coalesced   atomic.Int64 // waited on another caller's in-flight rewrite
	misses      atomic.Int64 // ran the rewrite (single-flight leaders)
	errors      atomic.Int64 // failed queries (any stage)
	timeouts    atomic.Int64 // failures due to context deadline/cancel
	inFlight    atomic.Int64 // currently executing (post-admission) gauge
	rowsServed  atomic.Int64 // total result rows returned
	writes      atomic.Int64 // write batches admitted into WriteBatch
	rowsWritten atomic.Int64 // total base rows inserted + deleted

	retries          atomic.Int64 // execution retries after transient store faults
	breakerFastFails atomic.Int64 // queries failed fast on an open breaker
}

// MetricsSnapshot is a point-in-time copy of the service metrics.
type MetricsSnapshot struct {
	Queries          int64 `json:"queries"`
	CacheHits        int64 `json:"cacheHits"`
	Coalesced        int64 `json:"coalesced"`
	CacheMisses      int64 `json:"cacheMisses"`
	Errors           int64 `json:"errors"`
	Timeouts         int64 `json:"timeouts"`
	InFlight         int64 `json:"inFlight"`
	RowsServed       int64 `json:"rowsServed"`
	Writes           int64 `json:"writes"`
	RowsWritten      int64 `json:"rowsWritten"`
	Retries          int64 `json:"retries"`
	BreakerFastFails int64 `json:"breakerFastFails"`
	CacheEntries     int   `json:"cacheEntries"`
	Sessions         int   `json:"sessions"`
	Statements       int   `json:"statements"`
}

// New builds a service over a deployed system.
func New(sys *core.System, opts Options) *Service {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	switch {
	case opts.RetryAttempts == 0:
		opts.RetryAttempts = 2
	case opts.RetryAttempts < 0:
		opts.RetryAttempts = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 2 * time.Millisecond
	}
	switch {
	case opts.BreakerThreshold == 0:
		opts.BreakerThreshold = 5
	case opts.BreakerThreshold < 0:
		opts.BreakerThreshold = 0
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 500 * time.Millisecond
	}
	s := &Service{
		sys:      sys,
		opts:     opts,
		cache:    newPlanCache(opts.CacheShards),
		sem:      make(chan struct{}, opts.MaxInFlight),
		sessions: map[uint64]*Session{},
		stmts:    map[uint64]*Stmt{},
		brk:      newBreakers(opts.BreakerThreshold, opts.BreakerCooldown),
	}
	s.prepare = sys.Prepare
	if opts.SlowQueryLog >= 0 {
		n := opts.SlowQueryLog
		if n == 0 {
			n = 128
		}
		s.slow = newSlowLog(n)
	}
	if opts.Registry != nil {
		s.obs = newSvcObs(opts.Registry, s)
	}
	s.workload = workload.New(workload.Options{
		MaxFingerprints: fingerprintSeriesCap,
		Catalog:         sys.Catalog,
		Stores:          sys.Stores,
		Schema:          sys.SchemaConstraints,
		Registry:        opts.Registry,
	})
	return s
}

// System returns the underlying mediator core.
func (s *Service) System() *core.System { return s.sys }

// Workload returns the always-on workload accountant (never nil): the
// per-fingerprint observations the advisor's FromWorkload consumes.
func (s *Service) Workload() *workload.Accountant { return s.workload }

// Snapshot reads the service metrics.
func (s *Service) Snapshot() MetricsSnapshot {
	s.sessMu.Lock()
	nSess := len(s.sessions)
	s.sessMu.Unlock()
	s.stmtMu.Lock()
	nStmt := len(s.stmts)
	s.stmtMu.Unlock()
	return MetricsSnapshot{
		Queries:          s.metrics.queries.Load(),
		CacheHits:        s.metrics.hits.Load(),
		Coalesced:        s.metrics.coalesced.Load(),
		CacheMisses:      s.metrics.misses.Load(),
		Errors:           s.metrics.errors.Load(),
		Timeouts:         s.metrics.timeouts.Load(),
		InFlight:         s.metrics.inFlight.Load(),
		RowsServed:       s.metrics.rowsServed.Load(),
		Writes:           s.metrics.writes.Load(),
		RowsWritten:      s.metrics.rowsWritten.Load(),
		Retries:          s.metrics.retries.Load(),
		BreakerFastFails: s.metrics.breakerFastFails.Load(),
		CacheEntries:     s.cache.len(),
		Sessions:         nSess,
		Statements:       nStmt,
	}
}

// Result is one answered query.
type Result struct {
	Rows []value.Tuple
	// Fingerprint is the canonical cache key the query normalized to.
	Fingerprint string
	// CacheHit: the rewriting came from a ready cache entry. Coalesced:
	// this query waited on a concurrent caller's rewrite of the same
	// fingerprint. Neither: this query ran the rewrite (cold miss).
	CacheHit  bool
	Coalesced bool
	// PlanTime covers fingerprinting plus the cache/rewrite stage;
	// ExecTime covers admission plus execution.
	PlanTime time.Duration
	ExecTime time.Duration
	// PerStore is the exact work each store performed for THIS query
	// (per-execution attribution; stores the query never touched are
	// absent).
	PerStore map[string]engine.CounterSnapshot
}

// Query answers a conjunctive query through the shared rewriting cache
// and the admission layer, materializing the full result. It is a thin
// wrapper over QueryRows; callers that can consume incrementally should
// use the cursor directly.
func (s *Service) Query(ctx context.Context, q pivot.CQ) (*Result, error) {
	r, err := s.QueryRows(ctx, q)
	if err != nil {
		return nil, err
	}
	return r.Materialize()
}

// QueryRows answers a conjunctive query as a streaming cursor. The
// returned Rows holds the query's admission slot and timeout context
// until Close; nothing materializes the result on the way out.
func (s *Service) QueryRows(ctx context.Context, q pivot.CQ) (*Rows, error) {
	s.metrics.queries.Add(1)
	return s.canonOpen(ctx, nil, q, 0)
}

// canonOpen canonicalizes (timing the phase) and opens the cursor.
// parse is the already-spent surface-parse time (0 for the CQ value
// surface). The caller has counted metrics.queries.
func (s *Service) canonOpen(ctx context.Context, sess *Session, q pivot.CQ, parse time.Duration) (*Rows, error) {
	t0 := time.Now()
	fp, err := Canonicalize(q)
	if err != nil {
		s.countFailure(ctx, err, sess)
		return nil, err
	}
	return s.openRows(ctx, sess, fp, fp.Args, parse, time.Since(t0))
}

// QueryText parses a surface-language query (lang "sql", "flwor" or
// "cq") against the configured schema and answers it (materialized).
func (s *Service) QueryText(ctx context.Context, language, text string) (*Result, error) {
	r, err := s.QueryTextRows(ctx, language, text)
	if err != nil {
		return nil, err
	}
	return r.Materialize()
}

// QueryTextRows is QueryText's cursor-returning variant.
func (s *Service) QueryTextRows(ctx context.Context, language, text string) (*Rows, error) {
	t0 := time.Now()
	q, err := s.parseText(language, text)
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	s.metrics.queries.Add(1)
	return s.canonOpen(ctx, nil, q, parse)
}

// parseText parses one of the surface languages into a conjunctive
// query, wrapping failures in the typed sentinel errors front ends map
// to status codes.
func (s *Service) parseText(language, text string) (pivot.CQ, error) {
	var q pivot.CQ
	var err error
	switch language {
	case "sql":
		if s.opts.Schema == nil {
			return pivot.CQ{}, ErrNoSchema
		}
		q, err = lang.ParseSQL(text, s.opts.Schema)
	case "flwor":
		if s.opts.Schema == nil {
			return pivot.CQ{}, ErrNoSchema
		}
		q, err = lang.ParseFLWOR(text, s.opts.Schema)
	case "cq", "":
		q, err = lang.ParseCQ(text)
	default:
		return pivot.CQ{}, fmt.Errorf("%w: %q", ErrUnknownLanguage, language)
	}
	if err != nil {
		return pivot.CQ{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return q, nil
}

// countFailure records a failed query in the service (and optional
// session) metrics. outer is the caller's context, consulted to classify
// timeouts.
func (s *Service) countFailure(outer context.Context, err error, sess *Session) {
	s.metrics.errors.Add(1)
	if outer.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.metrics.timeouts.Add(1)
	}
	if sess != nil {
		sess.errors.Add(1)
	}
}

// leaderPrepare returns the cold-path rewrite callback for one
// fingerprint: the leader's PACB search runs inside an admission slot,
// so a burst of distinct cold fingerprints cannot run unbounded
// concurrent backchases.
func (s *Service) leaderPrepare(ctx context.Context, fp Fingerprint) func() (*core.Prepared, error) {
	return func() (*core.Prepared, error) {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.sem }()
		return s.prepare(fp.Query, fp.Params...)
	}
}

// openRows runs the shared pipeline behind every query and Execute call
// — timeout context, single-flight rewrite cache, admission — and
// returns the open cursor. The admission slot and the timeout context
// transfer to the cursor and are released at Close, so the semaphore
// bounds live executions, not merely the synchronous part of a call.
// The caller has already counted metrics.queries; parse and canon are
// the durations of the phases that ran before this call (observed, with
// the phases measured here, when the cursor closes).
func (s *Service) openRows(ctx context.Context, sess *Session, fp Fingerprint, args []value.Value, parse, canon time.Duration) (*Rows, error) {
	base := ctx
	var cancel context.CancelFunc
	if s.opts.QueryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
	}
	fail := func(err error) error {
		if cancel != nil {
			cancel()
		}
		s.countFailure(base, err, sess)
		return err
	}
	start := time.Now()

	// Rewrite stage: shared cache, single-flight on cold misses, epoch
	// validation against the catalog generation.
	epoch := s.sys.CacheEpoch()
	prep, outcome, err := s.cache.get(ctx, fp.Key, epoch, s.leaderPrepare(ctx, fp))
	if outcome == outcomeMiss {
		s.metrics.misses.Add(1)
	}
	if err != nil {
		// Hits/coalesced waits that surface a cached error are counted as
		// errors, not as cache hits — a poisoned entry must not read as a
		// healthy cache in /stats.
		return nil, fail(err)
	}
	switch outcome {
	case outcomeHit:
		s.metrics.hits.Add(1)
		if sess != nil {
			sess.hits.Add(1)
		}
	case outcomeCoalesced:
		s.metrics.coalesced.Add(1)
	}
	planTime := time.Since(start)

	// Admission: bounded live executions. The slot is released by
	// Rows.Close, not here.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fail(ctx.Err())
	}
	s.metrics.inFlight.Add(1)
	execStart := time.Now()
	cur, err := s.execWithRetry(ctx, prep, args)
	if err != nil {
		s.metrics.inFlight.Add(-1)
		<-s.sem
		return nil, fail(err)
	}
	return &Rows{
		svc:         s,
		sess:        sess,
		cur:         cur,
		base:        base,
		cancel:      cancel,
		fp:          fp,
		fingerprint: fp.Key,
		cacheHit:    outcome == outcomeHit,
		coalesced:   outcome == outcomeCoalesced,
		openedAt:    start,
		parseTime:   parse,
		canonTime:   canon,
		planTime:    planTime,
		bindTime:    time.Since(execStart),
		execStart:   execStart,
		width:       fp.Query.Head.Arity(),
		outWidth:    fp.OutWidth,
		limit:       int64(s.opts.MaxResultRows),
	}, nil
}
