package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engines/engine"
	"repro/internal/lang"
	"repro/internal/pivot"
	"repro/internal/value"
)

// Options tunes the mediator service.
type Options struct {
	// MaxInFlight bounds concurrently executing queries (admission
	// control). Queries beyond the bound wait for a slot (or their
	// context). 0 = 4×GOMAXPROCS.
	MaxInFlight int
	// QueryTimeout caps one query end to end: admission waits, coalesced
	// waits on another caller's rewrite, and execution (checked once per
	// drained batch). A cold rewrite this query LEADS runs to completion
	// regardless — its result serves the coalesced waiters — but the
	// leader's admission wait before the rewrite is bounded. 0 = none.
	QueryTimeout time.Duration
	// CacheShards is the rewriting-cache shard count. 0 = 16.
	CacheShards int
	// Schema maps logical relation names to column names for the surface
	// languages (QueryText). Nil disables text queries.
	Schema lang.Schema
}

// Service is a concurrent mediator runtime over one core.System. All
// methods are safe for concurrent use.
type Service struct {
	sys   *core.System
	opts  Options
	cache *planCache
	sem   chan struct{}

	// prepare runs the cold path (PACB rewriting via core.Prepare).
	// Overridable in tests to count or stub rewrites.
	prepare func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error)

	metrics Metrics

	sessMu     sync.Mutex
	sessions   map[uint64]*Session
	nextSessID atomic.Uint64
}

// Metrics counts service-level events. All fields are atomics; read them
// through Snapshot.
type Metrics struct {
	queries    atomic.Int64 // queries admitted into Query/QueryText
	hits       atomic.Int64 // served from a ready cache entry
	coalesced  atomic.Int64 // waited on another caller's in-flight rewrite
	misses     atomic.Int64 // ran the rewrite (single-flight leaders)
	errors     atomic.Int64 // failed queries (any stage)
	timeouts   atomic.Int64 // failures due to context deadline/cancel
	inFlight   atomic.Int64 // currently executing (post-admission) gauge
	rowsServed atomic.Int64 // total result rows returned
}

// MetricsSnapshot is a point-in-time copy of the service metrics.
type MetricsSnapshot struct {
	Queries, CacheHits, Coalesced, CacheMisses int64
	Errors, Timeouts, InFlight, RowsServed     int64
	CacheEntries                               int
	Sessions                                   int
}

// New builds a service over a deployed system.
func New(sys *core.System, opts Options) *Service {
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	s := &Service{
		sys:      sys,
		opts:     opts,
		cache:    newPlanCache(opts.CacheShards),
		sem:      make(chan struct{}, opts.MaxInFlight),
		sessions: map[uint64]*Session{},
	}
	s.prepare = sys.Prepare
	return s
}

// System returns the underlying mediator core.
func (s *Service) System() *core.System { return s.sys }

// Snapshot reads the service metrics.
func (s *Service) Snapshot() MetricsSnapshot {
	s.sessMu.Lock()
	nSess := len(s.sessions)
	s.sessMu.Unlock()
	return MetricsSnapshot{
		Queries:      s.metrics.queries.Load(),
		CacheHits:    s.metrics.hits.Load(),
		Coalesced:    s.metrics.coalesced.Load(),
		CacheMisses:  s.metrics.misses.Load(),
		Errors:       s.metrics.errors.Load(),
		Timeouts:     s.metrics.timeouts.Load(),
		InFlight:     s.metrics.inFlight.Load(),
		RowsServed:   s.metrics.rowsServed.Load(),
		CacheEntries: s.cache.len(),
		Sessions:     nSess,
	}
}

// Result is one answered query.
type Result struct {
	Rows []value.Tuple
	// Fingerprint is the canonical cache key the query normalized to.
	Fingerprint string
	// CacheHit: the rewriting came from a ready cache entry. Coalesced:
	// this query waited on a concurrent caller's rewrite of the same
	// fingerprint. Neither: this query ran the rewrite (cold miss).
	CacheHit  bool
	Coalesced bool
	// PlanTime covers fingerprinting plus the cache/rewrite stage;
	// ExecTime covers admission plus execution.
	PlanTime time.Duration
	ExecTime time.Duration
	// PerStore is the exact work each store performed for THIS query
	// (per-execution attribution; stores the query never touched are
	// absent).
	PerStore map[string]engine.CounterSnapshot
}

// Query answers a conjunctive query through the shared rewriting cache
// and the admission layer.
func (s *Service) Query(ctx context.Context, q pivot.CQ) (*Result, error) {
	s.metrics.queries.Add(1)
	res, err := s.query(ctx, q)
	if err != nil {
		s.metrics.errors.Add(1)
		if ctx.Err() != nil || err == context.DeadlineExceeded || err == context.Canceled {
			s.metrics.timeouts.Add(1)
		}
		return nil, err
	}
	s.metrics.rowsServed.Add(int64(len(res.Rows)))
	return res, nil
}

// QueryText parses a surface-language query (lang "sql", "flwor" or
// "cq") against the configured schema and answers it.
func (s *Service) QueryText(ctx context.Context, language, text string) (*Result, error) {
	var q pivot.CQ
	var err error
	switch language {
	case "sql":
		if s.opts.Schema == nil {
			return nil, fmt.Errorf("service: no schema configured for surface languages")
		}
		q, err = lang.ParseSQL(text, s.opts.Schema)
	case "flwor":
		if s.opts.Schema == nil {
			return nil, fmt.Errorf("service: no schema configured for surface languages")
		}
		q, err = lang.ParseFLWOR(text, s.opts.Schema)
	case "cq", "":
		q, err = lang.ParseCQ(text)
	default:
		return nil, fmt.Errorf("service: unknown query language %q (sql|flwor|cq)", language)
	}
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, q)
}

func (s *Service) query(ctx context.Context, q pivot.CQ) (*Result, error) {
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	start := time.Now()

	fp, err := Canonicalize(q)
	if err != nil {
		return nil, err
	}

	// Rewrite stage: shared cache, single-flight on cold misses, epoch
	// validation against the catalog generation. The leader's PACB search
	// runs inside an admission slot, so a burst of distinct cold
	// fingerprints cannot run unbounded concurrent backchases.
	epoch := s.sys.CacheEpoch()
	prep, outcome, err := s.cache.get(ctx, fp.Key, epoch, func() (*core.Prepared, error) {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.sem }()
		return s.prepare(fp.Query, fp.Params...)
	})
	if outcome == outcomeMiss {
		s.metrics.misses.Add(1)
	}
	if err != nil {
		// Hits/coalesced waits that surface a cached error are counted as
		// errors by the caller, not as cache hits — a poisoned entry must
		// not read as a healthy cache in /stats.
		return nil, err
	}
	switch outcome {
	case outcomeHit:
		s.metrics.hits.Add(1)
	case outcomeCoalesced:
		s.metrics.coalesced.Add(1)
	}
	planTime := time.Since(start)

	// Admission: bounded in-flight executions.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.metrics.inFlight.Add(1)
	execStart := time.Now()
	rows, perStore, err := prep.ExecCtx(ctx, nil, fp.Args...)
	s.metrics.inFlight.Add(-1)
	<-s.sem
	if err != nil {
		return nil, err
	}

	// Trim appended parameter columns (constant over the whole result) back
	// to the original head width.
	if fp.OutWidth < fp.Query.Head.Arity() {
		for i, r := range rows {
			rows[i] = r[:fp.OutWidth]
		}
	}
	return &Result{
		Rows:        rows,
		Fingerprint: fp.Key,
		CacheHit:    outcome == outcomeHit,
		Coalesced:   outcome == outcomeCoalesced,
		PlanTime:    planTime,
		ExecTime:    time.Since(execStart),
		PerStore:    perStore,
	}, nil
}
