package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pivot"
	"repro/internal/scenario"
)

// TestSingleFlightColdMiss is the single-flight guard: N concurrent cold
// misses of one fingerprint must run exactly one rewrite (one
// core.Prepare, hence one rewrite.Rewrite call); everyone else waits on
// the leader's entry.
func TestSingleFlightColdMiss(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})

	var prepares atomic.Int64
	inner := svc.prepare
	var gate sync.WaitGroup
	gate.Add(1)
	svc.prepare = func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error) {
		prepares.Add(1)
		gate.Wait() // hold the leader until every contender has arrived
		return inner(q, params...)
	}

	const n = 16
	var started, done sync.WaitGroup
	started.Add(n)
	done.Add(n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			// Distinct literals, one fingerprint: all must coalesce.
			uid := []string{"u00001", "u00002", "u00003", "u00004"}[i%4]
			q := pivot.NewCQ(
				pivot.NewAtom("QCart", pivot.CStr(uid), v("pid"), v("qty")),
				pivot.NewAtom("Carts", pivot.CStr(uid), v("pid"), v("qty")))
			started.Done()
			_, errs[i] = svc.Query(context.Background(), q)
		}(i)
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let every goroutine reach the cache
	gate.Done()
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := prepares.Load(); got != 1 {
		t.Errorf("prepare (rewrite) ran %d times for %d concurrent cold misses, want exactly 1", got, n)
	}
	snap := svc.Snapshot()
	if snap.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1", snap.CacheMisses)
	}
	if snap.CacheHits+snap.Coalesced != n-1 {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d",
			snap.CacheHits, snap.Coalesced, snap.CacheHits+snap.Coalesced, n-1)
	}
}

// TestEpochInvalidation: catalog changes (fragment registration/drop)
// bump the epoch and lazily evict affected entries — no flush-the-world.
func TestEpochInvalidation(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	var prepares atomic.Int64
	inner := svc.prepare
	svc.prepare = func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error) {
		prepares.Add(1)
		return inner(q, params...)
	}

	q := pivot.NewCQ(
		pivot.NewAtom("QPrefs", pivot.CStr("u00001"), v("k"), v("val")),
		pivot.NewAtom("Prefs", pivot.CStr("u00001"), v("k"), v("val")))

	if _, err := svc.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("second query should hit the cache")
	}
	if prepares.Load() != 1 {
		t.Fatalf("prepares = %d, want 1", prepares.Load())
	}

	// A catalog change (drop + re-register of an unrelated path would do
	// too — any registration bumps the epoch) invalidates lazily.
	epochBefore := m.Sys.CacheEpoch()
	if err := m.Sys.DropFragment("FPH"); err != nil {
		t.Fatal(err)
	}
	if m.Sys.CacheEpoch() == epochBefore {
		t.Fatal("DropFragment did not bump the catalog epoch")
	}
	res, err = svc.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.Coalesced {
		t.Error("post-drop query served from a stale entry")
	}
	if prepares.Load() != 2 {
		t.Errorf("prepares = %d, want 2 (re-rewrite after epoch bump)", prepares.Load())
	}
}

// TestAdmissionAndTimeout: a full admission queue plus an expiring
// context must reject with the context error and count a timeout.
func TestAdmissionAndTimeout(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{MaxInFlight: 1, QueryTimeout: 30 * time.Millisecond})

	// Occupy the only execution slot.
	svc.sem <- struct{}{}
	defer func() { <-svc.sem }()

	q := pivot.NewCQ(
		pivot.NewAtom("QPrefs", pivot.CStr("u00001"), v("k"), v("val")),
		pivot.NewAtom("Prefs", pivot.CStr("u00001"), v("k"), v("val")))
	_, err := svc.Query(context.Background(), q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	snap := svc.Snapshot()
	if snap.Timeouts != 1 || snap.Errors != 1 {
		t.Errorf("timeouts=%d errors=%d, want 1/1", snap.Timeouts, snap.Errors)
	}
}

// TestSessionsShareCacheAndCount: sessions share the rewriting cache but
// keep their own accounting.
func TestSessionsShareCacheAndCount(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{Schema: scenario.LogicalSchema})
	ctx := context.Background()

	s1 := svc.NewSession()
	s2 := svc.NewSession()
	defer s1.Close()
	defer s2.Close()

	if _, err := s1.QueryText(ctx, "sql", "SELECT p.val FROM Prefs p WHERE p.uid = 'u00001'"); err != nil {
		t.Fatal(err)
	}
	res, err := s2.QueryText(ctx, "cq", `Q(val) :- Prefs('u00002', k, val)`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("second session should hit the entry the first session created")
	}

	st1, st2 := s1.Stats(), s2.Stats()
	if st1.Queries != 1 || st2.Queries != 1 {
		t.Errorf("session query counts = %d/%d, want 1/1", st1.Queries, st2.Queries)
	}
	if st1.CacheHits != 0 || st2.CacheHits != 1 {
		t.Errorf("session hit counts = %d/%d, want 0/1", st1.CacheHits, st2.CacheHits)
	}
	if got := svc.Snapshot().Sessions; got != 2 {
		t.Errorf("registered sessions = %d, want 2", got)
	}
	s2.Close()
	if got := svc.Snapshot().Sessions; got != 1 {
		t.Errorf("after close, sessions = %d, want 1", got)
	}
}

// TestServiceMatchesCore: for a mix of ad-hoc queries, the service
// (fingerprint + bind path) returns the same answers as direct
// core.System.Query.
func TestServiceMatchesCore(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	queries := []pivot.CQ{
		scenario.ProfileQuery(),
		scenario.PersonalizedSearchQuery(),
		pivot.NewCQ(
			pivot.NewAtom("Q", v("u"), v("name"), pivot.CStr("cat01")),
			pivot.NewAtom("Users", v("u"), v("name"), v("city")),
			pivot.NewAtom("Orders", v("o"), v("u"), v("p"), v("amt")),
			pivot.NewAtom("Products", v("p"), pivot.CStr("cat01"), v("d"))),
		searchQuery("u00005", "cat02"),
	}
	for i, q := range queries {
		want, err := m.Sys.Query(q)
		if err != nil {
			t.Fatalf("core query %d: %v", i, err)
		}
		got, err := svc.Query(ctx, q)
		if err != nil {
			t.Fatalf("service query %d: %v", i, err)
		}
		if rowKeys(got) != rowKeysTuples(want.Rows) {
			t.Errorf("query %d: service and core disagree\nservice: %s\ncore:    %s",
				i, rowKeys(got), rowKeysTuples(want.Rows))
		}
		if len(got.PerStore) == 0 {
			t.Errorf("query %d: no per-store attribution", i)
		}
	}
}

// TestLoadGenClosedLoop smoke-tests the load generator: all ops complete,
// hot traffic is mostly cache hits.
func TestLoadGenClosedLoop(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	uids := []string{"u00001", "u00002", "u00003", "u00004", "u00005"}
	res := RunClosedLoop(context.Background(), svc, 4, 25, func(client, op int) pivot.CQ {
		uid := uids[(client+op)%len(uids)]
		return pivot.NewCQ(
			pivot.NewAtom("QCart", pivot.CStr(uid), v("pid"), v("qty")),
			pivot.NewAtom("Carts", pivot.CStr(uid), v("pid"), v("qty")))
	})
	if res.Errors != 0 {
		t.Fatalf("load run had %d errors", res.Errors)
	}
	if res.Ops != 100 {
		t.Fatalf("ops = %d, want 100", res.Ops)
	}
	snap := svc.Snapshot()
	if snap.CacheMisses != 1 {
		t.Errorf("hot single-fingerprint traffic took %d misses, want 1", snap.CacheMisses)
	}
	if res.QPS() <= 0 {
		t.Error("QPS not computed")
	}
}
