package service

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/pivot"
)

// Session is one client's handle on the service. Sessions share the
// service-wide rewriting cache and admission layer; what they add is
// per-client accounting (and an identity for the network front end).
// Safe for concurrent use.
type Session struct {
	svc *Service
	id  uint64

	queries atomic.Int64
	hits    atomic.Int64
	errors  atomic.Int64
	rows    atomic.Int64
	lastUse atomic.Int64 // unix nanos
}

// NewSession registers a new session.
func (s *Service) NewSession() *Session {
	sess := &Session{svc: s, id: s.nextSessID.Add(1)}
	sess.lastUse.Store(time.Now().UnixNano())
	s.sessMu.Lock()
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	return sess
}

// Session returns a registered session by ID.
func (s *Service) Session(id uint64) (*Session, bool) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// ID returns the session identifier.
func (sess *Session) ID() uint64 { return sess.id }

// Close unregisters the session. Outstanding queries finish normally.
func (sess *Session) Close() {
	sess.svc.sessMu.Lock()
	delete(sess.svc.sessions, sess.id)
	sess.svc.sessMu.Unlock()
}

// ReapSessions unregisters sessions idle for longer than the given
// duration and reports how many were removed. Long-running front ends
// call this periodically so abandoned network sessions do not accumulate.
func (s *Service) ReapSessions(idle time.Duration) int {
	cutoff := time.Now().Add(-idle).UnixNano()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	n := 0
	for id, sess := range s.sessions {
		if sess.lastUse.Load() < cutoff {
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// SessionStats is a point-in-time copy of one session's accounting.
type SessionStats struct {
	ID                         uint64
	Queries, CacheHits, Errors int64
	RowsServed                 int64
	LastUsed                   time.Time
}

// Stats reads the session counters.
func (sess *Session) Stats() SessionStats {
	return SessionStats{
		ID:         sess.id,
		Queries:    sess.queries.Load(),
		CacheHits:  sess.hits.Load(),
		Errors:     sess.errors.Load(),
		RowsServed: sess.rows.Load(),
		LastUsed:   time.Unix(0, sess.lastUse.Load()),
	}
}

// Query answers a conjunctive query on behalf of this session.
func (sess *Session) Query(ctx context.Context, q pivot.CQ) (*Result, error) {
	return sess.record(sess.svc.Query(ctx, q))
}

// QueryText answers a surface-language query on behalf of this session.
func (sess *Session) QueryText(ctx context.Context, language, text string) (*Result, error) {
	return sess.record(sess.svc.QueryText(ctx, language, text))
}

// QueryRows answers a conjunctive query as a streaming cursor on behalf
// of this session. The session's row/error accounting is finalized when
// the cursor closes.
func (sess *Session) QueryRows(ctx context.Context, q pivot.CQ) (*Rows, error) {
	sess.queries.Add(1)
	sess.lastUse.Store(time.Now().UnixNano())
	sess.svc.metrics.queries.Add(1)
	return sess.svc.canonOpen(ctx, sess, q, 0)
}

// QueryTextRows parses a surface-language query and answers it as a
// streaming cursor on behalf of this session.
func (sess *Session) QueryTextRows(ctx context.Context, language, text string) (*Rows, error) {
	t0 := time.Now()
	q, err := sess.svc.parseText(language, text)
	if err != nil {
		return nil, err
	}
	parse := time.Since(t0)
	sess.queries.Add(1)
	sess.lastUse.Store(time.Now().UnixNano())
	sess.svc.metrics.queries.Add(1)
	return sess.svc.canonOpen(ctx, sess, q, parse)
}

func (sess *Session) record(res *Result, err error) (*Result, error) {
	sess.queries.Add(1)
	sess.lastUse.Store(time.Now().UnixNano())
	if err != nil {
		sess.errors.Add(1)
		return nil, err
	}
	if res.CacheHit {
		sess.hits.Add(1)
	}
	sess.rows.Add(int64(len(res.Rows)))
	return res, nil
}
