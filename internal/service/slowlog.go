package service

import (
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// SlowQuery is one retained slow-query-log entry: everything needed to
// understand one degraded request after the fact — when it ran, which
// request it belonged to, the canonical shape, the phase breakdown, and
// (when the query ran profiled) the per-operator tree.
type SlowQuery struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"requestId,omitempty"`
	// TraceID links the entry to its retained request trace
	// (/debug/traces/<id>) when the request was traced.
	TraceID     string          `json:"traceId,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	DurationUs  int64           `json:"durationUs"`
	Phases      []obs.Span      `json:"phases"`
	Rows        int64           `json:"rows"`
	CacheHit    bool            `json:"cacheHit"`
	Coalesced   bool            `json:"coalesced"`
	Error       string          `json:"error,omitempty"`
	Profile     *exec.OpProfile `json:"profile,omitempty"`
}

// slowLog is a fixed-size ring of the most recent slow (or failed)
// queries. Recording happens off the hot path — only queries past the
// threshold (or with an error) ever take the lock.
type slowLog struct {
	mu   sync.Mutex
	buf  []SlowQuery
	next int
	full bool
}

func newSlowLog(n int) *slowLog {
	return &slowLog{buf: make([]SlowQuery, n)}
}

func (l *slowLog) add(e SlowQuery) {
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// entries returns the retained entries, newest first.
func (l *slowLog) entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]SlowQuery, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

// SlowQueries returns the retained slow-query-log entries, newest first.
// A query lands here when its end-to-end latency crossed
// Options.SlowQueryThreshold, or when it failed (failures are always
// retained so degraded responses stay diagnosable). Empty when no
// threshold is configured and nothing failed.
func (s *Service) SlowQueries() []SlowQuery {
	if s.slow == nil {
		return nil
	}
	return s.slow.entries()
}

// record builds and retains the slow-log entry for one closed cursor.
// Runs only on the slow/failed path; allocation here is fine.
func (l *slowLog) record(r *Rows, total time.Duration) {
	e := SlowQuery{
		Time:        time.Now(),
		RequestID:   obs.RequestID(r.base),
		Fingerprint: r.fingerprint,
		DurationUs:  total.Microseconds(),
		Rows:        r.n,
		CacheHit:    r.cacheHit,
		Coalesced:   r.coalesced,
		Profile:     r.Profile(),
	}
	if tr := obs.TraceFrom(r.base); tr != nil {
		e.TraceID = tr.ID().String()
	}
	if r.err != nil {
		e.Error = r.err.Error()
	}
	execute, drain := r.splitExec()
	phases := [numPhases]time.Duration{
		r.parseTime, r.canonTime, r.planTime, r.bindTime, execute, drain,
	}
	var off time.Duration
	e.Phases = make([]obs.Span, 0, numPhases)
	for i, d := range phases {
		if i == phaseParse && d == 0 {
			continue // query arrived pre-parsed (CQ value surface)
		}
		e.Phases = append(e.Phases, obs.Span{Name: phaseNames[i], Offset: off, Dur: d})
		off += d
	}
	l.add(e)
}
