package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/pivot"
	"repro/internal/value"
)

// Stmt is a server-side prepared statement: one query shape, canonicalized
// by service.Canonicalize so its literals become bind parameters, with the
// PACB rewriting already run (or joined) at Prepare time. Execute binds
// argument values through the existing core.Prepared path — no parsing,
// no fingerprinting, no rewriting on the hot path. Statements are shared
// infrastructure: the rewriting itself lives in the service-wide cache,
// so a thousand statements over one shape cost one backchase, and a
// statement whose catalog epoch went stale transparently re-prepares on
// the next Execute.
type Stmt struct {
	svc      *Service
	id       uint64
	fp       Fingerprint
	language string
	text     string
	lastUse  atomic.Int64 // unix nanos
}

// Prepare parses a surface-language query, canonicalizes it, runs (or
// joins) its PACB rewrite, and registers the statement. The statement's
// parameters are the distinct literals of the query text, in occurrence
// order; Execute supplies fresh values for them.
func (s *Service) Prepare(ctx context.Context, language, text string) (*Stmt, error) {
	q, err := s.parseText(language, text)
	if err != nil {
		return nil, err
	}
	return s.prepareStmt(ctx, q, language, text)
}

// PrepareCQ prepares a conjunctive query as a statement (see Prepare).
func (s *Service) PrepareCQ(ctx context.Context, q pivot.CQ) (*Stmt, error) {
	return s.prepareStmt(ctx, q, "", "")
}

// prepareStmt canonicalizes, warms the rewriting cache, and registers
// the statement. The Stmt is fully initialized before it is published in
// the registry (sequential IDs make it guessable the moment it lands).
func (s *Service) prepareStmt(ctx context.Context, q pivot.CQ, language, text string) (*Stmt, error) {
	fp, err := Canonicalize(q)
	if err != nil {
		return nil, err
	}
	// Warm the shared rewriting cache now, under the caller's context:
	// Execute then starts from a ready entry (unless the catalog epoch
	// moves, in which case it lazily re-prepares like any query).
	epoch := s.sys.CacheEpoch()
	_, outcome, err := s.cache.get(ctx, fp.Key, epoch, s.leaderPrepare(ctx, fp))
	if outcome == outcomeMiss {
		s.metrics.misses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	st := &Stmt{svc: s, id: s.nextStmtID.Add(1), fp: fp, language: language, text: text}
	st.lastUse.Store(time.Now().UnixNano())
	s.stmtMu.Lock()
	s.stmts[st.id] = st
	s.stmtMu.Unlock()
	return st, nil
}

// ReapStatements unregisters statements idle for longer than the given
// duration and reports how many were removed. Long-running front ends
// call this periodically so clients that Prepare without ever closing do
// not grow the registry without bound (the underlying rewritings live in
// the fingerprint-keyed cache and are unaffected).
func (s *Service) ReapStatements(idle time.Duration) int {
	cutoff := time.Now().Add(-idle).UnixNano()
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	n := 0
	for id, st := range s.stmts {
		if st.lastUse.Load() < cutoff {
			delete(s.stmts, id)
			n++
		}
	}
	return n
}

// Stmt returns a registered statement by ID.
func (s *Service) Stmt(id uint64) (*Stmt, bool) {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	st, ok := s.stmts[id]
	return st, ok
}

// Execute runs a registered statement by ID, materializing the result.
func (s *Service) Execute(ctx context.Context, id uint64, args ...value.Value) (*Result, error) {
	st, ok := s.Stmt(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStatement, id)
	}
	return st.Execute(ctx, args...)
}

// ExecuteRows runs a registered statement by ID as a streaming cursor.
func (s *Service) ExecuteRows(ctx context.Context, id uint64, args ...value.Value) (*Rows, error) {
	st, ok := s.Stmt(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStatement, id)
	}
	return st.ExecuteRows(ctx, args...)
}

// ID returns the statement handle (the wire identifier).
func (st *Stmt) ID() uint64 { return st.id }

// NumParams returns the number of bind parameters.
func (st *Stmt) NumParams() int { return len(st.fp.Params) }

// Text returns the statement's source language and text (empty for
// statements prepared from a pivot.CQ directly).
func (st *Stmt) Text() (language, text string) { return st.language, st.text }

// DefaultArgs returns the literal values of the prepared query text, in
// parameter order — the binding Execute uses when a caller passes no
// arguments.
func (st *Stmt) DefaultArgs() []value.Value {
	return append([]value.Value(nil), st.fp.Args...)
}

// Close unregisters the statement. Outstanding Executes finish normally;
// the shared rewriting cache entry stays (it belongs to the fingerprint,
// not the statement).
func (st *Stmt) Close() {
	st.svc.stmtMu.Lock()
	delete(st.svc.stmts, st.id)
	st.svc.stmtMu.Unlock()
}

// Execute binds the arguments (one per parameter; none = the prepared
// text's own literals) and runs the statement, materializing the result.
func (st *Stmt) Execute(ctx context.Context, args ...value.Value) (*Result, error) {
	r, err := st.ExecuteRows(ctx, args...)
	if err != nil {
		return nil, err
	}
	return r.Materialize()
}

// ExecuteRows binds the arguments and runs the statement as a streaming
// cursor holding its admission slot until Close.
func (st *Stmt) ExecuteRows(ctx context.Context, args ...value.Value) (*Rows, error) {
	st.svc.metrics.queries.Add(1)
	st.lastUse.Store(time.Now().UnixNano())
	if len(args) == 0 && len(st.fp.Params) > 0 {
		args = st.fp.Args
	}
	if len(args) != len(st.fp.Params) {
		err := fmt.Errorf("%w: statement %d takes %d argument(s), got %d",
			ErrBadArgs, st.id, len(st.fp.Params), len(args))
		st.svc.countFailure(ctx, err, nil)
		return nil, err
	}
	return st.svc.openRows(ctx, nil, st.fp, args, 0, 0)
}
