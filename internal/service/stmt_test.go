package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/pivot"
	"repro/internal/value"
)

// The prepared-statement guard (à la TestSingleFlightColdMiss): Prepare
// of a query plus Executes of a whole literal-renamed family must run
// exactly one PACB rewrite — including re-Prepares of constant-renamed
// variants, which land on the same fingerprint.
func TestPrepareExecuteSingleRewrite(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	var prepares atomic.Int64
	inner := svc.prepare
	svc.prepare = func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error) {
		prepares.Add(1)
		return inner(q, params...)
	}

	st, err := svc.Prepare(ctx, "cq", `Q(pid, qty) :- Carts('u00001', pid, qty)`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 1 {
		t.Fatalf("params = %d, want 1", st.NumParams())
	}

	uids := []string{"u00001", "u00002", "u00003", "u00004"}
	for _, uid := range uids {
		res, err := st.Execute(ctx, value.Str(uid))
		if err != nil {
			t.Fatalf("execute %s: %v", uid, err)
		}
		// Cross-check against the unmediated core answer.
		direct, err := m.Sys.Query(pivot.NewCQ(
			pivot.NewAtom("Q", v("pid"), v("qty")),
			pivot.NewAtom("Carts", pivot.CStr(uid), v("pid"), v("qty"))))
		if err != nil {
			t.Fatal(err)
		}
		if rowKeysTuples(res.Rows) != rowKeysTuples(direct.Rows) {
			t.Errorf("uid %s: statement and core disagree\nstmt: %s\ncore: %s",
				uid, rowKeysTuples(res.Rows), rowKeysTuples(direct.Rows))
		}
	}

	// A literal-renamed re-Prepare shares the fingerprint: new handle,
	// zero additional rewrites.
	st2, err := svc.Prepare(ctx, "cq", `Q(pid, qty) :- Carts('u00042', pid, qty)`)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID() == st.ID() {
		t.Error("distinct Prepares returned one handle")
	}
	if _, err := st2.Execute(ctx, value.Str("u00002")); err != nil {
		t.Fatal(err)
	}

	if got := prepares.Load(); got != 1 {
		t.Errorf("PACB rewrite ran %d times for a literal-renamed Prepare/Execute family, want exactly 1", got)
	}
	if got := svc.Snapshot().Statements; got != 2 {
		t.Errorf("registered statements = %d, want 2", got)
	}
}

// Execute with no args binds the prepared text's own literals.
func TestExecuteDefaultArgs(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	st, err := svc.Prepare(ctx, "cq", `Q(k, val) :- Prefs('u00003', k, val)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Sys.Query(pivot.NewCQ(
		pivot.NewAtom("Q", v("k"), v("val")),
		pivot.NewAtom("Prefs", pivot.CStr("u00003"), v("k"), v("val"))))
	if err != nil {
		t.Fatal(err)
	}
	if rowKeysTuples(res.Rows) != rowKeysTuples(direct.Rows) {
		t.Error("default-args Execute disagrees with the literal query")
	}
	if got := st.DefaultArgs(); len(got) != 1 || !value.Equal(got[0], value.Str("u00003")) {
		t.Errorf("DefaultArgs = %v", got)
	}
}

func TestExecuteArgAndHandleErrors(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	st, err := svc.Prepare(ctx, "cq", `Q(k, val) :- Prefs('u00001', k, val)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(ctx, value.Str("a"), value.Str("b")); !errors.Is(err, ErrBadArgs) {
		t.Errorf("arity-mismatched Execute err = %v, want ErrBadArgs", err)
	}
	if _, err := svc.Execute(ctx, 99999, value.Str("a")); !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("unknown handle err = %v, want ErrUnknownStatement", err)
	}
	st.Close()
	if _, ok := svc.Stmt(st.ID()); ok {
		t.Error("closed statement still registered")
	}
	if _, err := svc.Execute(ctx, st.ID(), value.Str("u00001")); !errors.Is(err, ErrUnknownStatement) {
		t.Errorf("closed handle err = %v, want ErrUnknownStatement", err)
	}
}

// A catalog change after Prepare must transparently re-rewrite on the
// next Execute (epoch-validated cache), not serve a stale plan.
func TestExecuteAfterCatalogChange(t *testing.T) {
	m := testMarketplace(t)
	svc := New(m.Sys, Options{})
	ctx := context.Background()

	var prepares atomic.Int64
	inner := svc.prepare
	svc.prepare = func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error) {
		prepares.Add(1)
		return inner(q, params...)
	}

	st, err := svc.Prepare(ctx, "cq", `Q(k, val) :- Prefs('u00001', k, val)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(ctx, value.Str("u00002")); err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 1 {
		t.Fatalf("prepares = %d before catalog change, want 1", prepares.Load())
	}
	if err := m.Sys.DropFragment("FPH"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(ctx, value.Str("u00002")); err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 2 {
		t.Errorf("prepares = %d after epoch bump, want 2 (stale entry re-prepared)", prepares.Load())
	}
}
