package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/value"
)

// WriteOp is one DML operation against a logical base relation.
type WriteOp struct {
	// Delete selects delete semantics (insert otherwise).
	Delete bool
	// Relation is the logical base collection.
	Relation string
	// Rows are the tuples to insert or delete.
	Rows []value.Tuple
}

// BatchOpError identifies which operation of a WriteBatch failed, so
// front ends can attribute the failure to the right record of a batch
// ingest. It unwraps to the underlying cause for errors.Is matching.
type BatchOpError struct {
	// Op is the index of the failing operation within the batch.
	Op int
	// Err is the underlying failure.
	Err error
}

func (e *BatchOpError) Error() string { return fmt.Sprintf("batch op %d: %v", e.Op, e.Err) }

// Unwrap supports errors.Is/As through the batch wrapper.
func (e *BatchOpError) Unwrap() error { return e.Err }

// WriteResult reports an applied write (batch).
type WriteResult struct {
	// Inserted and Deleted count base rows written.
	Inserted, Deleted int
	// Fragments aggregates the physical per-fragment deltas across the
	// batch's operations.
	Fragments map[string]core.FragmentDelta
	// Latency is the admission-to-applied wall time.
	Latency time.Duration
}

// Insert inserts rows into a base relation through the admission layer.
func (s *Service) Insert(ctx context.Context, relation string, rows ...value.Tuple) (*WriteResult, error) {
	return s.WriteBatch(ctx, []WriteOp{{Relation: relation, Rows: rows}})
}

// Delete deletes rows from a base relation through the admission layer.
func (s *Service) Delete(ctx context.Context, relation string, rows ...value.Tuple) (*WriteResult, error) {
	return s.WriteBatch(ctx, []WriteOp{{Delete: true, Relation: relation, Rows: rows}})
}

// WriteBatch applies a sequence of DML operations in order, under ONE
// admission slot and the service's query timeout — writes contend with
// queries for the same MaxInFlight budget, so a write burst cannot starve
// the read path beyond the configured concurrency. Operations are applied
// through core.System's DML front door (the maintenance layer), which
// serializes writers per fragment while concurrent QueryRows cursors keep
// streaming their own snapshots; plans, prepared statements and cached
// rewritings stay warm (only the data epoch advances).
//
// Ordering within the batch is preserved; on the first failing operation
// the batch stops and a BatchOpError naming the operation's index is
// returned (earlier operations stay applied — the mediator offers no
// cross-store transactions, mirroring the paper's stores).
func (s *Service) WriteBatch(ctx context.Context, ops []WriteOp) (*WriteResult, error) {
	s.metrics.writes.Add(1)
	base := ctx
	var cancel context.CancelFunc
	if s.opts.QueryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.countFailure(base, ctx.Err(), nil)
		return nil, ctx.Err()
	}
	s.metrics.inFlight.Add(1)
	defer func() {
		s.metrics.inFlight.Add(-1)
		<-s.sem
	}()

	start := time.Now()
	res := &WriteResult{Fragments: map[string]core.FragmentDelta{}}
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			s.countFailure(base, err, nil)
			return nil, err
		}
		var rep *core.DMLReport
		var err error
		opStart := time.Now()
		if op.Delete {
			rep, err = s.sys.DeleteFrom(op.Relation, op.Rows...)
		} else {
			rep, err = s.sys.InsertInto(op.Relation, op.Rows...)
		}
		if tr := obs.TraceFrom(base); tr != nil {
			name := "dml.insert(" + op.Relation + ")"
			if op.Delete {
				name = "dml.delete(" + op.Relation + ")"
			}
			tr.Add(name, tr.Root(), opStart, time.Since(opStart))
			if err != nil {
				tr.SetError(err.Error())
			}
		}
		if err != nil {
			// Classify store-attributed failures into the typed sentinels
			// (503/504 at the HTTP layer) before attributing the batch op.
			err = &BatchOpError{Op: i, Err: classifyStoreError(err)}
			s.countFailure(base, err, nil)
			return nil, err
		}
		if op.Delete {
			res.Deleted += rep.Rows
		} else {
			res.Inserted += rep.Rows
		}
		for name, d := range rep.Fragments {
			agg := res.Fragments[name]
			agg.Added += d.Added
			agg.Removed += d.Removed
			res.Fragments[name] = agg
		}
	}
	s.metrics.rowsWritten.Add(int64(res.Inserted + res.Deleted))
	res.Latency = time.Since(start)
	return res, nil
}
