package service

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/pivot"
	"repro/internal/value"
)

// maintainedService deploys the materialized marketplace with the write
// path attached and wraps it in a service.
func maintainedService(t testing.TB, opts Options) *Service {
	t.Helper()
	m := testMarketplace(t)
	if _, err := m.Maintained(); err != nil {
		t.Fatal(err)
	}
	return New(m.Sys, opts)
}

func TestServiceWriteReadBack(t *testing.T) {
	svc := maintainedService(t, Options{})
	ctx := context.Background()

	res, err := svc.Insert(ctx, "Users", value.TupleOf("u-new", "zed", "nice"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 0 {
		t.Fatalf("write result = %+v", res)
	}
	if d := res.Fragments["FUsers"]; d.Added != 1 {
		t.Fatalf("FUsers delta = %+v, want 1 add", d)
	}
	q, err := svc.Query(ctx, pivot.NewCQ(
		pivot.NewAtom("Q", v("n")),
		pivot.NewAtom("Users", pivot.CStr("u-new"), v("n"), v("c"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 {
		t.Fatalf("query after insert: rows = %v", q.Rows)
	}

	if _, err := svc.Delete(ctx, "Users", value.TupleOf("u-new", "zed", "nice")); err != nil {
		t.Fatal(err)
	}
	q, err = svc.Query(ctx, pivot.NewCQ(
		pivot.NewAtom("Q", v("n")),
		pivot.NewAtom("Users", pivot.CStr("u-new"), v("n"), v("c"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 0 {
		t.Fatalf("query after delete: rows = %v", q.Rows)
	}

	snap := svc.Snapshot()
	if snap.Writes != 2 || snap.RowsWritten != 2 {
		t.Errorf("metrics = writes %d rowsWritten %d, want 2/2", snap.Writes, snap.RowsWritten)
	}
}

func TestWriteBatchMixedOps(t *testing.T) {
	svc := maintainedService(t, Options{})
	ctx := context.Background()
	res, err := svc.WriteBatch(ctx, []WriteOp{
		{Relation: "Prefs", Rows: []value.Tuple{value.TupleOf("u00001", "tz", "utc"), value.TupleOf("u00002", "tz", "cet")}},
		{Delete: true, Relation: "Prefs", Rows: []value.Tuple{value.TupleOf("u00001", "tz", "utc")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 {
		t.Fatalf("batch result = %+v", res)
	}
}

func TestWriteErrorsAreTyped(t *testing.T) {
	svc := maintainedService(t, Options{})
	ctx := context.Background()
	if _, err := svc.Insert(ctx, "Nope", value.TupleOf("x")); !errors.Is(err, core.ErrUnknownRelation) {
		t.Errorf("unknown relation: err = %v", err)
	}
	if _, err := svc.Insert(ctx, "Users", value.TupleOf("too", "short")); !errors.Is(err, core.ErrBadWrite) {
		t.Errorf("arity: err = %v", err)
	}
	// A service over a system without a maintainer refuses writes.
	bare := New(testMarketplace(t).Sys, Options{})
	if _, err := bare.Insert(ctx, "Users", value.TupleOf("a", "b", "c")); !errors.Is(err, core.ErrNoDML) {
		t.Errorf("no maintainer: err = %v", err)
	}
}

// TestDMLPreservesPlanCache is the epoch-split acceptance guard: 1000
// writes through the service must leave the single-flight rewriting cache
// and server-side prepared statements warm — exactly zero additional PACB
// rewrites when the same statement and query run again — while the data
// epoch records every applied delta.
func TestDMLPreservesPlanCache(t *testing.T) {
	svc := maintainedService(t, Options{})
	ctx := context.Background()

	var prepares atomic.Int64
	inner := svc.prepare
	svc.prepare = func(q pivot.CQ, params ...pivot.Var) (*core.Prepared, error) {
		prepares.Add(1)
		return inner(q, params...)
	}

	// Warm one prepared statement and one ad-hoc query shape.
	st, err := svc.Prepare(ctx, "cq", `Q(pid, qty) :- Carts('u00001', pid, qty)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(ctx, value.Str("u00002")); err != nil {
		t.Fatal(err)
	}
	adhoc := pivot.NewCQ(
		pivot.NewAtom("QV", v("p"), v("d")),
		pivot.NewAtom("Visits", pivot.CStr("u00003"), v("p"), v("d")))
	if _, err := svc.Query(ctx, adhoc); err != nil {
		t.Fatal(err)
	}
	warm := prepares.Load()
	cacheEntries := svc.Snapshot().CacheEntries
	catalogEpoch := svc.System().CacheEpoch()
	dataEpoch := svc.System().DataEpoch()

	// 1000 writes: 500 inserts into Visits, then the same 500 deleted.
	// Visits feeds both the identity fragment FVisits and the materialized
	// purchase-history join FPH, so every write exercises delta joins.
	rows := make([]value.Tuple, 500)
	for i := range rows {
		rows[i] = value.TupleOf(fmt.Sprintf("u%05d", 1+i%40), fmt.Sprintf("pX%03d", i), int64(i))
	}
	for _, r := range rows {
		if _, err := svc.Insert(ctx, "Visits", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range rows {
		if _, err := svc.Delete(ctx, "Visits", r); err != nil {
			t.Fatal(err)
		}
	}

	// Re-execute the prepared statement and the cached query shape.
	if _, err := st.Execute(ctx, value.Str("u00002")); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Query(ctx, adhoc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("ad-hoc query shape fell out of the rewriting cache after DML")
	}
	if got := prepares.Load(); got != warm {
		t.Errorf("PACB rewrites after 1k writes = %d, want %d (exactly 0 new)", got, warm)
	}
	if got := svc.Snapshot().CacheEntries; got != cacheEntries {
		t.Errorf("cache entries %d → %d across DML", cacheEntries, got)
	}
	if got := svc.System().CacheEpoch(); got != catalogEpoch {
		t.Errorf("catalog epoch moved %d → %d on DML", catalogEpoch, got)
	}
	if got := svc.System().DataEpoch(); got < dataEpoch+1000 {
		t.Errorf("data epoch advanced only %d → %d across 1000 writes", dataEpoch, got)
	}
	snap := svc.Snapshot()
	if snap.Writes != 1000 || snap.RowsWritten != 1000 {
		t.Errorf("write metrics = %d/%d, want 1000/1000", snap.Writes, snap.RowsWritten)
	}
}

// TestConcurrentWritesAndQueries exercises the stats path under load:
// bound-plan builds read fragment statistics while DML appliers refresh
// them. Run under -race this guards the StatsSnapshot/SetStats locking.
func TestConcurrentWritesAndQueries(t *testing.T) {
	svc := maintainedService(t, Options{})
	ctx := context.Background()
	// The literal canonicalizes into a bind parameter, so each Execute
	// with a fresh value builds (and caches) a new bound plan.
	st, err := svc.PrepareCQ(ctx, pivot.NewCQ(
		pivot.NewAtom("QV", v("p"), v("d")),
		pivot.NewAtom("Visits", pivot.CStr("u00001"), v("p"), v("d"))))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 150; i++ {
			r := value.TupleOf(fmt.Sprintf("u%05d", 1+i%40), fmt.Sprintf("pc%03d", i), int64(i))
			if _, err := svc.Insert(ctx, "Visits", r); err != nil {
				done <- err
				return
			}
			if _, err := svc.Delete(ctx, "Visits", r); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 300; i++ {
		// Distinct parameter values force fresh bound-plan builds, which
		// read fragment statistics through the planner.
		if _, err := st.Execute(ctx, value.Str(fmt.Sprintf("u%05d", 1+i%60))); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
