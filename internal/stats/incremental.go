package stats

import "repro/internal/value"

// Incremental maintains FragmentStats under a stream of row additions and
// removals — the statistics side of incremental view maintenance. Instead
// of recollecting over the whole fragment after every DML batch, it keeps
// an exact per-column counting structure (value key → reference count), so
// distinct counts stay precise under deletions, where one-pass sketches
// (HyperLogLog and friends) cannot decrement. Memory is proportional to
// the number of distinct values per column, which the fragment's own store
// already pays for its indexes.
//
// Incremental is not safe for concurrent use; the maintenance layer
// serializes appliers per fragment.
type Incremental struct {
	rows int64
	cols []map[string]int64
}

// NewIncremental returns empty statistics for a fragment of the given
// arity.
func NewIncremental(width int) *Incremental {
	inc := &Incremental{cols: make([]map[string]int64, width)}
	for i := range inc.cols {
		inc.cols[i] = map[string]int64{}
	}
	return inc
}

// Add records n copies of a row (n may be 1 for a single insert).
func (inc *Incremental) Add(t value.Tuple, n int64) {
	if n <= 0 {
		return
	}
	inc.rows += n
	for i := range inc.cols {
		if i < len(t) {
			inc.cols[i][t[i].Key()] += n
		}
	}
}

// Remove records the removal of n copies of a row. Counts clamp at zero:
// removing a row that was never added is the caller's bug, but must not
// corrupt the remaining statistics.
func (inc *Incremental) Remove(t value.Tuple, n int64) {
	if n <= 0 {
		return
	}
	inc.rows -= n
	if inc.rows < 0 {
		inc.rows = 0
	}
	for i := range inc.cols {
		if i >= len(t) {
			continue
		}
		k := t[i].Key()
		c := inc.cols[i][k] - n
		if c > 0 {
			inc.cols[i][k] = c
		} else {
			delete(inc.cols[i], k)
		}
	}
}

// Rows returns the current row count.
func (inc *Incremental) Rows() int64 { return inc.rows }

// Stats renders the current FragmentStats snapshot for the catalog.
func (inc *Incremental) Stats() FragmentStats {
	st := FragmentStats{Rows: inc.rows, Distinct: make([]int64, len(inc.cols))}
	for i, m := range inc.cols {
		st.Distinct[i] = int64(len(m))
	}
	return st
}
