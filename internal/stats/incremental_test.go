package stats

import (
	"testing"

	"repro/internal/value"
)

func TestIncrementalTracksCollect(t *testing.T) {
	// After any add/remove sequence, Stats() must equal Collect over the
	// surviving multiset.
	inc := NewIncremental(2)
	rows := []value.Tuple{
		value.TupleOf("a", 1), value.TupleOf("a", 2), value.TupleOf("b", 1),
		value.TupleOf("b", 1), value.TupleOf("c", 3),
	}
	for _, r := range rows {
		inc.Add(r, 1)
	}
	inc.Remove(value.TupleOf("b", 1), 1)
	inc.Remove(value.TupleOf("c", 3), 1)

	survivors := []value.Tuple{
		value.TupleOf("a", 1), value.TupleOf("a", 2), value.TupleOf("b", 1),
	}
	want := Collect(survivors)
	got := inc.Stats()
	if got.Rows != want.Rows {
		t.Errorf("rows = %d, want %d", got.Rows, want.Rows)
	}
	for i := range want.Distinct {
		if got.Distinct[i] != want.Distinct[i] {
			t.Errorf("distinct[%d] = %d, want %d", i, got.Distinct[i], want.Distinct[i])
		}
	}
}

func TestIncrementalMulticountAndClamp(t *testing.T) {
	inc := NewIncremental(1)
	inc.Add(value.TupleOf("x"), 3)
	if inc.Rows() != 3 {
		t.Fatalf("rows = %d", inc.Rows())
	}
	if d := inc.Stats().Distinct[0]; d != 1 {
		t.Fatalf("distinct = %d", d)
	}
	inc.Remove(value.TupleOf("x"), 2)
	if inc.Rows() != 1 || inc.Stats().Distinct[0] != 1 {
		t.Fatalf("after partial remove: rows=%d distinct=%d", inc.Rows(), inc.Stats().Distinct[0])
	}
	inc.Remove(value.TupleOf("x"), 1)
	if inc.Rows() != 0 || inc.Stats().Distinct[0] != 0 {
		t.Fatalf("after full remove: rows=%d distinct=%d", inc.Rows(), inc.Stats().Distinct[0])
	}
	// Over-removal clamps instead of corrupting.
	inc.Remove(value.TupleOf("x"), 5)
	if inc.Rows() != 0 {
		t.Fatalf("clamped rows = %d", inc.Rows())
	}
	// No-op signs.
	inc.Add(value.TupleOf("y"), 0)
	inc.Remove(value.TupleOf("y"), -1)
	if inc.Rows() != 0 {
		t.Fatalf("no-op changed rows to %d", inc.Rows())
	}
}
