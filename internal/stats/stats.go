// Package stats holds per-fragment statistics and the textbook cardinality
// and cost estimation ESTOCADA uses to pick among rewritings ("ESTOCADA
// estimates the cardinality of its result, based on statistics it gathers
// and stores on the data of each fragment and using database textbook
// formulas", paper §III).
package stats

import (
	"fmt"
	"sort"

	"repro/internal/pivot"
	"repro/internal/value"
)

// FragmentStats summarizes one stored fragment.
type FragmentStats struct {
	// Rows is the fragment cardinality.
	Rows int64
	// Distinct[i] is the number of distinct values in column i.
	Distinct []int64
}

// Collect computes statistics from a sample of the fragment's tuples.
func Collect(rows []value.Tuple) FragmentStats {
	st := FragmentStats{Rows: int64(len(rows))}
	if len(rows) == 0 {
		return st
	}
	width := len(rows[0])
	sets := make([]map[string]struct{}, width)
	for i := range sets {
		sets[i] = map[string]struct{}{}
	}
	for _, r := range rows {
		for i := 0; i < width && i < len(r); i++ {
			sets[i][r[i].Key()] = struct{}{}
		}
	}
	st.Distinct = make([]int64, width)
	for i, s := range sets {
		st.Distinct[i] = int64(len(s))
	}
	return st
}

// DistinctAt returns the distinct count of a column, defaulting to Rows
// (every value distinct) when unknown.
func (s FragmentStats) DistinctAt(col int) int64 {
	if col >= 0 && col < len(s.Distinct) && s.Distinct[col] > 0 {
		return s.Distinct[col]
	}
	if s.Rows > 0 {
		return s.Rows
	}
	return 1
}

// Selectivity returns the estimated fraction of the fragment's rows that
// survive an equality restriction on col (the textbook 1/V(F,c)).
func (s FragmentStats) Selectivity(col int) float64 {
	return 1 / float64(s.DistinctAt(col))
}

// JoinCard estimates the natural-join cardinality of two intermediate
// results sharing one column, using the System-R containment assumption:
// |L ⋈ R| = |L|·|R| / max(V(L,c), V(R,c)).
func JoinCard(leftCard, rightCard float64, leftDistinct, rightDistinct int64) float64 {
	d := leftDistinct
	if rightDistinct > d {
		d = rightDistinct
	}
	if d < 1 {
		d = 1
	}
	card := leftCard * rightCard / float64(d)
	if card < 0 {
		card = 0
	}
	return card
}

// Provider resolves statistics for a view/fragment predicate.
type Provider interface {
	StatsFor(pred string) (FragmentStats, bool)
}

// MapProvider is a Provider backed by a map.
type MapProvider map[string]FragmentStats

// StatsFor implements Provider.
func (m MapProvider) StatsFor(pred string) (FragmentStats, bool) {
	s, ok := m[pred]
	return s, ok
}

// EstimateCQ estimates the result cardinality of a conjunctive query over
// fragment predicates using the classical System-R style formulas:
//
//   - the starting cardinality of each atom is the fragment's row count;
//   - each constant selection on column c divides by V(F,c);
//   - each join variable shared between two atoms divides the product by
//     max(V(L,c), V(R,c));
//   - repeated variables within one atom divide by the column's V.
//
// Unknown fragments default to defaultRows.
func EstimateCQ(q pivot.CQ, p Provider, defaultRows int64) float64 {
	if defaultRows <= 0 {
		defaultRows = 1000
	}
	card := 1.0
	// Track, per variable, the distinct counts of the columns it appears in.
	varDistinct := map[pivot.Var][]int64{}
	for _, a := range q.Body {
		st, ok := p.StatsFor(a.Pred)
		if !ok {
			st = FragmentStats{Rows: defaultRows}
		}
		rows := float64(st.Rows)
		if rows < 1 {
			rows = 1
		}
		seenInAtom := map[pivot.Var]bool{}
		for col, t := range a.Args {
			switch tt := t.(type) {
			case pivot.Const:
				rows /= float64(st.DistinctAt(col))
			case pivot.Var:
				if seenInAtom[tt] {
					rows /= float64(st.DistinctAt(col))
				} else {
					seenInAtom[tt] = true
					varDistinct[tt] = append(varDistinct[tt], st.DistinctAt(col))
				}
			}
		}
		if rows < 1e-9 {
			rows = 1e-9
		}
		card *= rows
	}
	// Join selectivity: for each variable occurring in k atoms, divide by
	// the (k-1) largest distinct counts.
	for _, ds := range varDistinct {
		if len(ds) < 2 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] > ds[j] })
		for _, d := range ds[:len(ds)-1] {
			card /= float64(d)
		}
	}
	if card < 0 {
		card = 0
	}
	return card
}

// CostFactors models the relative expense of talking to each store kind.
// The values are unitless work units roughly proportional to the real-world
// costs the paper's scenario exploits: a KV get is far cheaper than a
// document-path query, which is cheaper than a relational scan; parallel
// stores amortize scans over partitions.
type CostFactors struct {
	// RequestOverhead is charged once per delegated request.
	RequestOverhead float64
	// TupleCost is charged per tuple produced by the store.
	TupleCost float64
	// ScanPenalty multiplies the scanned cardinality for full scans.
	ScanPenalty float64
	// Parallelism divides scan costs (≥1).
	Parallelism float64
}

// DefaultCostFactors returns per-store-kind factors.
func DefaultCostFactors(kind string) CostFactors {
	switch kind {
	case "keyvalue":
		return CostFactors{RequestOverhead: 1, TupleCost: 0.2, ScanPenalty: 1000, Parallelism: 1}
	case "document":
		return CostFactors{RequestOverhead: 4, TupleCost: 2.0, ScanPenalty: 1.2, Parallelism: 1}
	case "fulltext":
		return CostFactors{RequestOverhead: 4, TupleCost: 1.0, ScanPenalty: 1.5, Parallelism: 1}
	case "parallel":
		return CostFactors{RequestOverhead: 12, TupleCost: 0.6, ScanPenalty: 1, Parallelism: 8}
	default: // relational
		return CostFactors{RequestOverhead: 3, TupleCost: 0.5, ScanPenalty: 1, Parallelism: 1}
	}
}

// AccessKind classifies one fragment access in a plan.
type AccessKind int

const (
	// AccessScan reads the whole fragment.
	AccessScan AccessKind = iota
	// AccessIndex reads matching tuples through an index.
	AccessIndex
	// AccessKey is an exact-key get.
	AccessKey
)

func (k AccessKind) String() string {
	switch k {
	case AccessScan:
		return "scan"
	case AccessIndex:
		return "index"
	case AccessKey:
		return "key"
	default:
		return fmt.Sprintf("access(%d)", int(k))
	}
}

// AccessCost estimates one access returning outRows tuples out of a
// fragment with totalRows, under the store's cost factors.
func AccessCost(k AccessKind, f CostFactors, totalRows, outRows float64) float64 {
	if totalRows < 1 {
		totalRows = 1
	}
	if outRows < 0 {
		outRows = 0
	}
	switch k {
	case AccessKey:
		return f.RequestOverhead + f.TupleCost*outRows
	case AccessIndex:
		return f.RequestOverhead + f.TupleCost*outRows + 0.1
	default:
		par := f.Parallelism
		if par < 1 {
			par = 1
		}
		return f.RequestOverhead + f.ScanPenalty*totalRows/par*0.1 + f.TupleCost*outRows
	}
}
