package stats

import (
	"testing"

	"repro/internal/pivot"
	"repro/internal/value"
)

func TestCollect(t *testing.T) {
	rows := []value.Tuple{
		value.TupleOf("u1", "paris"),
		value.TupleOf("u2", "paris"),
		value.TupleOf("u3", "lyon"),
	}
	st := Collect(rows)
	if st.Rows != 3 {
		t.Errorf("rows = %d", st.Rows)
	}
	if st.DistinctAt(0) != 3 || st.DistinctAt(1) != 2 {
		t.Errorf("distinct = %v", st.Distinct)
	}
}

func TestCollectEmpty(t *testing.T) {
	st := Collect(nil)
	if st.Rows != 0 {
		t.Errorf("rows = %d", st.Rows)
	}
	if st.DistinctAt(0) != 1 {
		t.Errorf("empty DistinctAt = %d, want 1", st.DistinctAt(0))
	}
}

func TestDistinctAtFallbacks(t *testing.T) {
	st := FragmentStats{Rows: 100}
	if st.DistinctAt(5) != 100 {
		t.Errorf("missing column distinct = %d, want Rows", st.DistinctAt(5))
	}
}

func qAtom(pred string, args ...pivot.Term) pivot.Atom { return pivot.NewAtom(pred, args...) }

func TestEstimateSelection(t *testing.T) {
	p := MapProvider{"F": {Rows: 1000, Distinct: []int64{100, 10}}}
	// Constant on column 0: 1000/100 = 10.
	q := pivot.NewCQ(qAtom("Q", pivot.Var("y")),
		qAtom("F", pivot.CStr("k"), pivot.Var("y")))
	if got := EstimateCQ(q, p, 0); got != 10 {
		t.Errorf("estimate = %v, want 10", got)
	}
}

func TestEstimateJoin(t *testing.T) {
	p := MapProvider{
		"L": {Rows: 1000, Distinct: []int64{1000, 50}},
		"R": {Rows: 200, Distinct: []int64{100, 200}},
	}
	// L(x,j) ⋈ R(j,y): 1000*200/max(50,100) = 2000.
	q := pivot.NewCQ(qAtom("Q", pivot.Var("x"), pivot.Var("y")),
		qAtom("L", pivot.Var("x"), pivot.Var("j")),
		qAtom("R", pivot.Var("j"), pivot.Var("y")))
	if got := EstimateCQ(q, p, 0); got != 2000 {
		t.Errorf("join estimate = %v, want 2000", got)
	}
}

func TestEstimateRepeatedVarInAtom(t *testing.T) {
	p := MapProvider{"F": {Rows: 100, Distinct: []int64{10, 10}}}
	q := pivot.NewCQ(qAtom("Q", pivot.Var("x")),
		qAtom("F", pivot.Var("x"), pivot.Var("x")))
	if got := EstimateCQ(q, p, 0); got != 10 {
		t.Errorf("F(x,x) estimate = %v, want 10", got)
	}
}

func TestEstimateUnknownFragmentDefault(t *testing.T) {
	q := pivot.NewCQ(qAtom("Q", pivot.Var("x")), qAtom("Ghost", pivot.Var("x")))
	if got := EstimateCQ(q, MapProvider{}, 500); got != 500 {
		t.Errorf("default estimate = %v", got)
	}
}

func TestEstimateNeverNegative(t *testing.T) {
	p := MapProvider{"F": {Rows: 1, Distinct: []int64{1000000}}}
	q := pivot.NewCQ(qAtom("Q", pivot.Var("x")),
		qAtom("F", pivot.CStr("a"), pivot.Var("x")))
	if got := EstimateCQ(q, p, 0); got < 0 {
		t.Errorf("estimate = %v", got)
	}
}

func TestCostFactorsPerKind(t *testing.T) {
	kv := DefaultCostFactors("keyvalue")
	doc := DefaultCostFactors("document")
	rel := DefaultCostFactors("relational")
	par := DefaultCostFactors("parallel")
	// A key get from KV must be cheaper than the same from a doc store.
	kvCost := AccessCost(AccessKey, kv, 10000, 3)
	docCost := AccessCost(AccessIndex, doc, 10000, 3)
	if kvCost >= docCost {
		t.Errorf("kv get (%v) must beat doc lookup (%v)", kvCost, docCost)
	}
	// A parallel scan must beat a relational scan on the same cardinality.
	parScan := AccessCost(AccessScan, par, 100000, 100)
	relScan := AccessCost(AccessScan, rel, 100000, 100)
	if parScan >= relScan {
		t.Errorf("parallel scan (%v) must beat relational scan (%v)", parScan, relScan)
	}
	// Scanning a KV store must be catastrophically expensive.
	kvScan := AccessCost(AccessScan, kv, 100000, 100)
	if kvScan <= relScan {
		t.Errorf("kv scan (%v) must be punished vs relational scan (%v)", kvScan, relScan)
	}
	// An index lookup must beat a scan for selective access.
	if AccessCost(AccessIndex, rel, 100000, 5) >= AccessCost(AccessScan, rel, 100000, 5) {
		t.Error("index lookup must beat scan")
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessScan.String() != "scan" || AccessIndex.String() != "index" || AccessKey.String() != "key" {
		t.Error("AccessKind strings")
	}
}
