// Greedy clause-ordered cost model (in the style of janus-datalog's
// clause-scored planner): at each step every access-pattern-feasible next
// atom is scored by its estimated output cardinality — live per-column
// distinct counts read from Fragment.StatsSnapshot — times a per-store
// access cost derived from the store's configured latency model and its
// measured latency-histogram p50, and the cheapest clause is placed next.
// The same per-step model chooses bind-join vs hash-join per edge and the
// hash-join build side, so ChooseBest compares rewritings and orders
// jointly under one cost function.
package translate

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/engines/engine"
	"repro/internal/obs"
	"repro/internal/pivot"
	"repro/internal/stats"
)

const (
	// latencyBaseline is the per-request service time worth one unit of
	// stats.CostFactors.RequestOverhead; stores are scaled relative to it.
	latencyBaseline = 10 * time.Microsecond
	// cpuPerTuple is the mediator's per-tuple processing cost (work units).
	cpuPerTuple = 0.05
	// minLatencySamples gates the switch from the configured latency model
	// to the measured histogram p50.
	minLatencySamples = 32
	// minRowsFloor keeps cardinality estimates strictly positive.
	minRowsFloor = 0.05
)

// opKind is the operator the planner picked for one placed clause.
type opKind int

const (
	opLeaf opKind = iota // first clause: plain access
	opHash               // independent access + hash join
	opBind               // dependent access: one fetch per distinct bind key
)

// clauseChoice is the scored decision for placing one atom next.
type clauseChoice struct {
	op        opKind
	access    stats.AccessKind
	buildLeft bool    // opHash: materialize the accumulated (left) side
	buildRows float64 // opHash: estimated build-side rows
	bindPos   []int   // opBind: atom positions fed per fetch
	bindKeys  float64 // opBind: estimated distinct fetches
	stepCost  float64
	outCard   float64 // intermediate cardinality after this clause
}

// costModel snapshots the per-store cost factors for one Build call.
type costModel struct {
	p      *Planner
	stores map[string]stats.CostFactors
}

func (p *Planner) newCostModel() *costModel {
	return &costModel{p: p, stores: make(map[string]stats.CostFactors, 4)}
}

// storeFactors derives the store's cost factors: the kind's base factors
// with the per-request overhead scaled by the store's real latency — the
// measured histogram p50 once enough samples exist, else the configured
// engine.Latency model.
func (cm *costModel) storeFactors(name string) stats.CostFactors {
	if f, ok := cm.stores[name]; ok {
		return f
	}
	kind := "relational"
	var lat time.Duration
	if eng, ok := cm.p.Stores.Engine(name); ok {
		kind = eng.Kind()
		if lp, ok := eng.(interface{ RequestLatency() time.Duration }); ok {
			lat = lp.RequestLatency()
		}
		if hp, ok := eng.(interface{ LatencyHistogram() *obs.Histogram }); ok {
			if h := hp.LatencyHistogram(); h != nil && h.Count() >= minLatencySamples {
				if p50 := h.Snapshot().Quantile(0.5); p50 > 0 {
					lat = time.Duration(p50 * float64(time.Second))
				}
			}
		}
	}
	f := stats.DefaultCostFactors(kind)
	if lat > 0 {
		scale := float64(lat) / float64(latencyBaseline)
		if scale < 0.25 {
			scale = 0.25
		} else if scale > 500 {
			scale = 500
		}
		f.RequestOverhead *= scale
	}
	cm.stores[name] = f
	return f
}

// delegable reports whether the fragment's accesses can merge into a
// pushed-down native subquery on its store.
func (cm *costModel) delegable(f *catalog.Fragment) bool {
	if cm.p.DisableDelegation || f.Access != "" {
		return false
	}
	eng, ok := cm.p.Stores.Engine(f.Store)
	return ok && eng.Capabilities().Has(engine.CapJoin)
}

// orderState tracks the greedy walk: which variables are bound, the
// intermediate cardinality, and the previous clause (for the delegation
// round-trip discount).
type orderState struct {
	bound         map[pivot.Var]bool
	card          float64
	placed        int
	prevStore     string
	prevDelegable bool
}

func newOrderState(n int) *orderState {
	return &orderState{bound: make(map[pivot.Var]bool, 2*n), card: 1}
}

func (st *orderState) clone() *orderState {
	b := make(map[pivot.Var]bool, len(st.bound)+4)
	for v := range st.bound {
		b[v] = true
	}
	return &orderState{bound: b, card: st.card, placed: st.placed,
		prevStore: st.prevStore, prevDelegable: st.prevDelegable}
}

func (st *orderState) advance(a pivot.Atom, f *catalog.Fragment, c clauseChoice, cm *costModel) {
	st.card = c.outCard
	for _, v := range a.Vars() {
		st.bound[v] = true
	}
	st.prevStore = f.Store
	st.prevDelegable = cm.delegable(f)
	st.placed++
}

// feasibleNow reports whether every access-pattern 'b' position of the atom
// is a constant or an already-bound variable (the same closure rule
// rewrite.FeasibleBound uses).
func feasibleNow(a pivot.Atom, f *catalog.Fragment, bound map[pivot.Var]bool) bool {
	for _, pos := range f.Access.BoundPositions() {
		if pos >= len(a.Args) {
			return false
		}
		if v, ok := a.Args[pos].(pivot.Var); ok && !bound[v] {
			return false
		}
	}
	return true
}

// accessKindAt classifies an equality restriction on one atom position.
func accessKindAt(f *catalog.Fragment, pos int) stats.AccessKind {
	if f.Layout.Kind == catalog.LayoutKV && pos == f.Layout.KeyCol {
		return stats.AccessKey
	}
	if hasIndexCol(f, pos) {
		return stats.AccessIndex
	}
	return stats.AccessScan
}

// selectiveAt reports whether binding pos makes the access cheaper than a
// full scan (key or index).
func selectiveAt(f *catalog.Fragment, pos int) bool {
	return accessKindAt(f, pos) > stats.AccessScan
}

// scoreAtom prices placing atom ai next given the walk state, choosing the
// cheapest operator for the edge (or, with fixed=true, the pre-cost-model
// heuristics: bind only when the access pattern forces it, hash joins
// always building the new input). It does not mutate the state.
func (cm *costModel) scoreAtom(r pivot.CQ, frags []*catalog.Fragment, ai int, st *orderState, fixed bool) clauseChoice {
	a := r.Body[ai]
	f := frags[ai]
	fs := f.StatsSnapshot()
	rows := float64(fs.Rows)
	if rows < 1 {
		rows = 1
	}
	factors := cm.storeFactors(f.Store)

	// Restriction selectivities carried by the atom itself (constants and
	// repeated variables) vs join selectivities from upstream-bound vars.
	constSel := 1.0
	kind := stats.AccessScan
	var boundPos []int
	firstPos := make(map[pivot.Var]int, len(a.Args))
	for pos, t := range a.Args {
		switch tt := t.(type) {
		case pivot.Const:
			constSel *= fs.Selectivity(pos)
			if k := accessKindAt(f, pos); k > kind {
				kind = k
			}
		case pivot.Var:
			if _, seen := firstPos[tt]; seen {
				constSel *= fs.Selectivity(pos)
				continue
			}
			firstPos[tt] = pos
			if st.bound[tt] {
				boundPos = append(boundPos, pos)
			}
		}
	}
	// Access-pattern 'b' positions holding upstream variables force a
	// dependent access: those values must be supplied per fetch.
	var required map[int]bool
	for _, pos := range f.Access.BoundPositions() {
		if pos < len(a.Args) {
			if v, ok := a.Args[pos].(pivot.Var); ok && st.bound[v] {
				if required == nil {
					required = map[int]bool{}
				}
				required[pos] = true
			}
		}
	}

	fetchRows := rows * constSel
	if fetchRows < minRowsFloor {
		fetchRows = minRowsFloor
	}

	var c clauseChoice
	if st.placed == 0 {
		c = clauseChoice{op: opLeaf, access: kind, outCard: fetchRows}
		c.stepCost = stats.AccessCost(kind, factors, rows, fetchRows) + cpuPerTuple*fetchRows
	} else {
		joinSel := 1.0
		for _, pos := range boundPos {
			joinSel *= fs.Selectivity(pos)
		}
		outCard := st.card * fetchRows * joinSel
		if outCard < minRowsFloor {
			outCard = minRowsFloor
		}

		// Hash join: one independent fetch (constants pushed down), then
		// build the estimated-smaller side and probe with the other.
		hash := clauseChoice{op: opHash, access: kind, outCard: outCard}
		hash.buildLeft = st.card < fetchRows
		hash.buildRows = st.card
		if fetchRows < hash.buildRows {
			hash.buildRows = fetchRows
		}
		hash.stepCost = stats.AccessCost(kind, factors, rows, fetchRows) +
			cpuPerTuple*(st.card+fetchRows+outCard)

		// Bind join: one fetch per estimated distinct key over the bound
		// columns that make the access selective; pattern-required columns
		// always bind.
		var bindPos []int
		for pos := range required {
			bindPos = append(bindPos, pos)
		}
		for _, pos := range boundPos {
			if !required[pos] && selectiveAt(f, pos) {
				bindPos = append(bindPos, pos)
			}
		}
		sort.Ints(bindPos)
		var bind clauseChoice
		if len(bindPos) > 0 {
			bindSel, keys := 1.0, 1.0
			bkind := kind
			for _, pos := range bindPos {
				bindSel *= fs.Selectivity(pos)
				keys *= float64(fs.DistinctAt(pos))
				if k := accessKindAt(f, pos); k > bkind {
					bkind = k
				}
			}
			// Distinct bind keys: bounded by the driving cardinality and by
			// the fragment's own key population.
			if keys > st.card {
				keys = st.card
			}
			if keys > rows {
				keys = rows
			}
			if keys < 1 {
				keys = 1
			}
			perFetch := rows * constSel * bindSel
			if perFetch < minRowsFloor {
				perFetch = minRowsFloor
			}
			bind = clauseChoice{op: opBind, access: bkind, bindPos: bindPos, bindKeys: keys, outCard: outCard}
			bind.stepCost = keys*stats.AccessCost(bkind, factors, rows, perFetch) + cpuPerTuple*outCard
		}

		switch {
		case len(required) > 0:
			c = bind
		case fixed:
			hash.buildLeft = false // heuristic baseline: new input builds
			hash.buildRows = fetchRows
			c = hash
		case len(bindPos) > 0 && bind.stepCost < hash.stepCost:
			c = bind
		default:
			c = hash
		}
	}

	// Consecutive same-store delegable clauses merge into one native
	// subquery, saving a round trip: the per-delegation round-trip term
	// (replacing the old flat per-delegation credit). Step costs always
	// include at least one RequestOverhead, so this never goes negative.
	if st.prevDelegable && st.prevStore == f.Store && cm.delegable(f) {
		c.stepCost -= factors.RequestOverhead
		if c.stepCost < 0 {
			c.stepCost = 0
		}
	}
	return c
}

// completeCheapest finishes a partial order by repeatedly placing the
// feasible clause with the cheapest step, returning the summed tail cost.
// The bound-variable closure is monotone, so a feasible prefix of a
// feasible body always completes (ok=false only for infeasible bodies).
func (cm *costModel) completeCheapest(r pivot.CQ, frags []*catalog.Fragment, st *orderState, used []bool) (float64, bool) {
	n := len(r.Body)
	var tail float64
	for st.placed < n {
		bestIdx := -1
		var best clauseChoice
		for ai := 0; ai < n; ai++ {
			if used[ai] || !feasibleNow(r.Body[ai], frags[ai], st.bound) {
				continue
			}
			c := cm.scoreAtom(r, frags, ai, st, false)
			if bestIdx < 0 || c.stepCost < best.stepCost ||
				(c.stepCost == best.stepCost && c.outCard < best.outCard) {
				bestIdx, best = ai, c
			}
		}
		if bestIdx < 0 {
			return 0, false
		}
		used[bestIdx] = true
		tail += best.stepCost
		st.advance(r.Body[bestIdx], frags[bestIdx], best, cm)
	}
	return tail, true
}

// exhaustiveOrderLimit caps branch-and-bound order search; larger bodies
// fall back to the rollout-greedy walk. 7! = 5040 orders upper-bounds the
// search, and the greedy seed plus cost pruning cut it far below that.
const exhaustiveOrderLimit = 7

// orderAtoms produces the clause order and per-clause operator choices.
// Fixed mode reproduces the pre-cost-model planner (first feasible clause
// in body order, heuristic operators) and prices it with the same model,
// so the two are directly comparable. Cost-based mode runs the rollout
// greedy walk, refined by exhaustive branch-and-bound on small bodies.
func (cm *costModel) orderAtoms(r pivot.CQ, frags []*catalog.Fragment, fixed bool) (order []int, choices []clauseChoice, cost, card float64, err error) {
	if fixed {
		return cm.orderFixed(r, frags)
	}
	order, choices, cost, card, err = cm.orderGreedy(r, frags)
	if err != nil || len(r.Body) > exhaustiveOrderLimit {
		return order, choices, cost, card, err
	}
	return cm.orderExhaustive(r, frags, order, choices, cost, card)
}

// orderFixed takes the first feasible clause at every step (the semantics
// of rewrite.Feasible) with heuristic operator choices.
func (cm *costModel) orderFixed(r pivot.CQ, frags []*catalog.Fragment) (order []int, choices []clauseChoice, cost, card float64, err error) {
	n := len(r.Body)
	st := newOrderState(n)
	used := make([]bool, n)
	order = make([]int, 0, n)
	choices = make([]clauseChoice, 0, n)
	for st.placed < n {
		bestIdx := -1
		for ai := 0; ai < n; ai++ {
			if !used[ai] && feasibleNow(r.Body[ai], frags[ai], st.bound) {
				bestIdx = ai
				break
			}
		}
		if bestIdx < 0 {
			return nil, nil, 0, 0, fmt.Errorf("translate: rewriting %v is infeasible under access patterns", r)
		}
		c := cm.scoreAtom(r, frags, bestIdx, st, true)
		used[bestIdx] = true
		order = append(order, bestIdx)
		choices = append(choices, c)
		cost += c.stepCost
		st.advance(r.Body[bestIdx], frags[bestIdx], c, cm)
	}
	return order, choices, cost, st.card, nil
}

// orderGreedy scores every feasible next clause by its step cost plus a
// cheapest-step rollout of the remaining clauses (one-step lookahead with
// greedy completion — polynomial, microsecond-scale, and immune to the
// cross-product traps a pure cheapest-step walk falls into).
func (cm *costModel) orderGreedy(r pivot.CQ, frags []*catalog.Fragment) (order []int, choices []clauseChoice, cost, card float64, err error) {
	n := len(r.Body)
	st := newOrderState(n)
	used := make([]bool, n)
	order = make([]int, 0, n)
	choices = make([]clauseChoice, 0, n)
	scratch := make([]bool, n)
	for st.placed < n {
		bestIdx := -1
		var best clauseChoice
		var bestTotal float64
		for ai := 0; ai < n; ai++ {
			if used[ai] || !feasibleNow(r.Body[ai], frags[ai], st.bound) {
				continue
			}
			c := cm.scoreAtom(r, frags, ai, st, false)
			rst := st.clone()
			rst.advance(r.Body[ai], frags[ai], c, cm)
			copy(scratch, used)
			scratch[ai] = true
			tail, ok := cm.completeCheapest(r, frags, rst, scratch)
			if !ok {
				continue
			}
			total := c.stepCost + tail
			if bestIdx < 0 || total < bestTotal ||
				(total == bestTotal && c.outCard < best.outCard) {
				bestIdx, best, bestTotal = ai, c, total
			}
		}
		if bestIdx < 0 {
			return nil, nil, 0, 0, fmt.Errorf("translate: rewriting %v is infeasible under access patterns", r)
		}
		used[bestIdx] = true
		order = append(order, bestIdx)
		choices = append(choices, best)
		cost += best.stepCost
		st.advance(r.Body[bestIdx], frags[bestIdx], best, cm)
	}
	return order, choices, cost, st.card, nil
}

// orderExhaustive refines a seed order by branch-and-bound over all
// feasible orders, pruning prefixes that already cost at least the best
// complete order found. DFS explores atoms in ascending index, so the
// result is deterministic for a given body.
func (cm *costModel) orderExhaustive(r pivot.CQ, frags []*catalog.Fragment, seedOrder []int, seedChoices []clauseChoice, seedCost, seedCard float64) (order []int, choices []clauseChoice, cost, card float64, err error) {
	n := len(r.Body)
	bestOrder, bestChoices, bestCost, bestCard := seedOrder, seedChoices, seedCost, seedCard
	st := newOrderState(n)
	used := make([]bool, n)
	cur := make([]int, 0, n)
	curCh := make([]clauseChoice, 0, n)
	var dfs func(soFar float64)
	dfs = func(soFar float64) {
		if st.placed == n {
			if soFar < bestCost {
				bestOrder = append([]int(nil), cur...)
				bestChoices = append([]clauseChoice(nil), curCh...)
				bestCost, bestCard = soFar, st.card
			}
			return
		}
		for ai := 0; ai < n; ai++ {
			if used[ai] || !feasibleNow(r.Body[ai], frags[ai], st.bound) {
				continue
			}
			c := cm.scoreAtom(r, frags, ai, st, false)
			if soFar+c.stepCost >= bestCost {
				continue
			}
			savedCard, savedStore, savedDeleg := st.card, st.prevStore, st.prevDelegable
			var newly []pivot.Var
			for _, vv := range r.Body[ai].Vars() {
				if !st.bound[vv] {
					st.bound[vv] = true
					newly = append(newly, vv)
				}
			}
			st.card = c.outCard
			st.prevStore = frags[ai].Store
			st.prevDelegable = cm.delegable(frags[ai])
			st.placed++
			used[ai] = true
			cur = append(cur, ai)
			curCh = append(curCh, c)

			dfs(soFar + c.stepCost)

			curCh = curCh[:len(curCh)-1]
			cur = cur[:len(cur)-1]
			used[ai] = false
			st.placed--
			st.card, st.prevStore, st.prevDelegable = savedCard, savedStore, savedDeleg
			for _, vv := range newly {
				delete(st.bound, vv)
			}
		}
	}
	dfs(0)
	return bestOrder, bestChoices, bestCost, bestCard, nil
}

// orderGiven prices an externally supplied clause order and produces the
// per-clause operator choices for it. This is the fast path for binding a
// prepared statement: the order search ran once at prepare time, and every
// bind has constants in the same positions, so the chosen order stays
// valid and only the operator choices are re-derived (linear, no search).
func (cm *costModel) orderGiven(r pivot.CQ, frags []*catalog.Fragment, given []int) (order []int, choices []clauseChoice, cost, card float64, err error) {
	n := len(r.Body)
	if len(given) != n {
		return nil, nil, 0, 0, fmt.Errorf("translate: order %v does not cover %d body atoms", given, n)
	}
	st := newOrderState(n)
	seen := make([]bool, n)
	choices = make([]clauseChoice, 0, n)
	for _, ai := range given {
		if ai < 0 || ai >= n || seen[ai] {
			return nil, nil, 0, 0, fmt.Errorf("translate: order %v is not a permutation of %d body atoms", given, n)
		}
		seen[ai] = true
		if !feasibleNow(r.Body[ai], frags[ai], st.bound) {
			return nil, nil, 0, 0, fmt.Errorf("translate: order %v infeasible at atom %d", given, ai)
		}
		c := cm.scoreAtom(r, frags, ai, st, false)
		choices = append(choices, c)
		cost += c.stepCost
		st.advance(r.Body[ai], frags[ai], c, cm)
	}
	return given, choices, cost, st.card, nil
}

// costOrder prices one externally chosen evaluation order with the same
// per-step model (cheapest operator per edge). The small-query oracle test
// compares the greedy order against exhaustive enumeration through this.
func (cm *costModel) costOrder(r pivot.CQ, frags []*catalog.Fragment, order []int) (float64, error) {
	_, _, cost, _, err := cm.orderGiven(r, frags, order)
	return cost, err
}
