package translate

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engines/relstore"
	"repro/internal/exec"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/stats"
	"repro/internal/value"
)

// randomPlannerInstance builds a randomized catalog (fragments with random
// arities, stats, indexes, and access patterns) plus a random conjunctive
// body over it, all under one seeded rng.
func randomPlannerInstance(rng *rand.Rand, maxAtoms int) (*Planner, pivot.CQ, []*catalog.Fragment) {
	cat := catalog.New()
	stores := NewStores()
	stores.AddRel(relstore.New("pg"))

	nFrags := 2 + rng.Intn(4)
	fragNames := make([]string, nFrags)
	for i := 0; i < nFrags; i++ {
		arity := 1 + rng.Intn(3)
		name := fmt.Sprintf("F%d", i)
		fragNames[i] = name
		cols := make([]string, arity)
		for c := range cols {
			cols[c] = fmt.Sprintf("c%d", c)
		}
		var idx []int
		for c := 0; c < arity; c++ {
			if rng.Intn(3) == 0 {
				idx = append(idx, c)
			}
		}
		var access rewrite.AccessPattern
		if rng.Intn(5) < 2 {
			adorn := make([]byte, arity)
			for c := range adorn {
				if rng.Intn(3) == 0 {
					adorn[c] = 'b'
				} else {
					adorn[c] = 'f'
				}
			}
			access = rewrite.AccessPattern(adorn)
		}
		rows := int64(1 + rng.Intn(10000))
		distinct := make([]int64, arity)
		for c := range distinct {
			distinct[c] = 1 + rng.Int63n(rows)
		}
		f := &catalog.Fragment{
			Name: name, Dataset: "d", View: idView(name, "R"+name, arity), Store: "pg",
			Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: name, Columns: cols, IndexCols: idx},
			Access: access,
			Stats:  stats.FragmentStats{Rows: rows, Distinct: distinct},
		}
		if err := cat.Register(f); err != nil {
			panic(err)
		}
	}

	nAtoms := 2 + rng.Intn(maxAtoms-1)
	varPool := make([]pivot.Var, nAtoms+2)
	for i := range varPool {
		varPool[i] = pivot.Var(fmt.Sprintf("v%d", i))
	}
	body := make([]pivot.Atom, nAtoms)
	frags := make([]*catalog.Fragment, nAtoms)
	for i := 0; i < nAtoms; i++ {
		f, _ := cat.Get(fragNames[rng.Intn(nFrags)])
		frags[i] = f
		arity := f.View.Def.Head.Arity()
		args := make([]pivot.Term, arity)
		for c := range args {
			if rng.Intn(5) == 0 {
				args[c] = pivot.CInt(int64(rng.Intn(10)))
			} else {
				args[c] = varPool[rng.Intn(len(varPool))]
			}
		}
		body[i] = pivot.NewAtom(f.Name, args...)
	}
	q := pivot.CQ{Head: pivot.NewAtom("Q"), Body: body}
	p := &Planner{Catalog: cat, Stores: stores}
	return p, q, frags
}

// TestGreedyOrderFeasibilityProperty checks, over randomized catalogs and
// queries, that (a) every order the greedy planner emits satisfies the
// access-pattern bound-variable closure, and (b) the greedy walk finds an
// order exactly when the reference first-fit check (rewrite.Feasible) says
// one exists — greedy never dead-ends on a feasible body.
func TestGreedyOrderFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		p, q, frags := randomPlannerInstance(rng, 5)
		patterns := map[string]rewrite.AccessPattern{}
		for _, f := range frags {
			patterns[f.Name] = f.Access
		}
		_, refOK := rewrite.Feasible(q.Body, patterns)

		cm := p.newCostModel()
		order, _, _, _, err := cm.orderAtoms(q, frags, false)
		if (err == nil) != refOK {
			t.Fatalf("trial %d: greedy feasible=%v, reference feasible=%v\nbody: %v",
				trial, err == nil, refOK, q.Body)
		}
		if err != nil {
			continue
		}
		// Replay the order and check the closure rule at every step.
		bound := map[pivot.Var]bool{}
		for step, ai := range order {
			if !feasibleNow(q.Body[ai], frags[ai], bound) {
				t.Fatalf("trial %d: step %d places infeasible atom %v (order %v)",
					trial, step, q.Body[ai], order)
			}
			for _, vv := range q.Body[ai].Vars() {
				bound[vv] = true
			}
		}
		// Fixed mode must agree on feasibility too.
		if _, _, _, _, err := cm.orderAtoms(q, frags, true); err != nil {
			t.Fatalf("trial %d: fixed-order mode dead-ended on feasible body %v", trial, q.Body)
		}
	}
}

// TestGreedyOrderOracle compares the greedy order's cost against exhaustive
// enumeration of all feasible orders (small bodies): the greedy plan must
// stay within 1.2x of the optimum under the same per-step cost model.
func TestGreedyOrderOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		p, q, frags := randomPlannerInstance(rng, 6)
		patterns := map[string]rewrite.AccessPattern{}
		for _, f := range frags {
			patterns[f.Name] = f.Access
		}
		cm := p.newCostModel()
		order, _, greedyCost, _, err := cm.orderAtoms(q, frags, false)
		if err != nil {
			continue
		}
		// costOrder must agree with the greedy walk on its own order.
		if c, err := cm.costOrder(q, frags, order); err != nil || c != greedyCost {
			t.Fatalf("trial %d: costOrder(%v) = %v, %v; greedy said %v", trial, order, c, err, greedyCost)
		}
		best := -1.0
		for _, cand := range rewrite.FeasibleOrders(q.Body, patterns, 0) {
			c, err := cm.costOrder(q, frags, cand)
			if err != nil {
				t.Fatalf("trial %d: enumerated order %v rejected: %v", trial, cand, err)
			}
			if best < 0 || c < best {
				best = c
			}
		}
		if best < 0 {
			t.Fatalf("trial %d: greedy found an order but enumeration found none", trial)
		}
		if greedyCost > best*1.2+1e-9 {
			t.Errorf("trial %d: greedy cost %.3f exceeds 1.2x optimum %.3f\nbody: %v\ngreedy order: %v",
				trial, greedyCost, best, q.Body, order)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d feasible instances checked; generator too restrictive", checked)
	}
}

// TestChooseBestDeterministicTieBreak registers two indistinguishable
// fragments (same store, layout, stats) so their single-atom rewritings
// cost identically, and checks ChooseBest picks the same winner regardless
// of enumeration order.
func TestChooseBestDeterministicTieBreak(t *testing.T) {
	p, _, _ := fixture(t)
	twin := &catalog.Fragment{
		Name: "FRel2", Dataset: "d", View: idView("FRel2", "R", 2), Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "r", Columns: []string{"k", "x"}, IndexCols: []int{0}},
		Stats:  stats.FragmentStats{Rows: 1000, Distinct: []int64{1000, 50}},
	}
	if err := p.Catalog.Register(twin); err != nil {
		t.Fatal(err)
	}
	r1 := pivot.NewCQ(atom("Q", v("x")), atom("FRel", pivot.CInt(3), v("x")))
	r2 := pivot.NewCQ(atom("Q", v("x")), atom("FRel2", pivot.CInt(3), v("x")))

	bestA, plansA, err := p.ChooseBest([]pivot.CQ{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	bestB, _, err := p.ChooseBest([]pivot.CQ{r2, r1})
	if err != nil {
		t.Fatal(err)
	}
	if plansA[0].Cost != plansA[1].Cost {
		t.Fatalf("fixture broken: twin rewritings cost %.3f vs %.3f", plansA[0].Cost, plansA[1].Cost)
	}
	if bestA.Rewriting.String() != bestB.Rewriting.String() {
		t.Errorf("tie-break depends on enumeration order: %s vs %s",
			bestA.Rewriting, bestB.Rewriting)
	}
}

// TestHashJoinBuildSideSwap drives a join where the accumulated side is
// much smaller than the new clause's fetch: the planner must build on the
// accumulated (left) side, record it in the provenance, and still produce
// correct rows.
func TestHashJoinBuildSideSwap(t *testing.T) {
	p, rs, _ := fixture(t)
	// Small fragment joining FRel on the unindexed x column: no selective
	// bind position, so the edge is a hash join. FSmall is placed first
	// (cheap scan); FRel's fetch (est. 1000 rows) then dwarfs the
	// accumulated 5 rows, forcing build=left.
	if _, err := rs.CreateTable("small", "y", "x"); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if err := rs.Insert("small", value.TupleOf(100+j, j*10)); err != nil {
			t.Fatal(err)
		}
	}
	smallFrag := &catalog.Fragment{
		Name: "FSmall", Dataset: "d", View: idView("FSmall", "S", 2), Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "small", Columns: []string{"y", "x"}},
		Stats:  stats.FragmentStats{Rows: 5, Distinct: []int64{5, 5}},
	}
	if err := p.Catalog.Register(smallFrag); err != nil {
		t.Fatal(err)
	}
	p.DisableDelegation = true // force the join into the mediator

	r := pivot.NewCQ(atom("Q", v("k"), v("y"), v("x")),
		atom("FRel", v("k"), v("x")),
		atom("FSmall", v("y"), v("x")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 2 || plan.Order[0] != 1 {
		t.Fatalf("expected FSmall placed first, order = %v\n%s", plan.Order, plan.Explain())
	}
	var hashClause *ClauseScore
	for i := range plan.Clauses {
		if plan.Clauses[i].Op == "hash-join" {
			hashClause = &plan.Clauses[i]
		}
	}
	if hashClause == nil {
		t.Fatalf("no hash-join clause:\n%s", plan.Explain())
	}
	if hashClause.BuildSide != "left" {
		t.Errorf("build side = %q, want left\n%s", hashClause.BuildSide, plan.Explain())
	}
	if !strings.Contains(plan.Explain(), "build=left") {
		t.Errorf("explain lacks build-side annotation:\n%s", plan.Explain())
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// x = j*10 matches FRel rows (j, j*10) for j in 0..4; head is (k, y, x).
	if len(rows) != 5 {
		t.Errorf("rows = %d, want 5\n%v", len(rows), rows)
	}
	for _, row := range rows {
		k, x := row[0].(value.Int), row[2].(value.Int)
		if int64(x) != int64(k)*10 {
			t.Errorf("join mismatch: %v", row)
		}
	}
}

// TestProvenanceFields spot-checks the JSON provenance surface.
func TestProvenanceFields(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("k"), v("x"), v("y")),
		atom("FRel", v("k"), v("x")),
		atom("FKV", v("k"), v("y")))
	p.DataEpoch = func() uint64 { return 42 }
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	pv := plan.Provenance()
	if pv.StatsEpoch != 42 {
		t.Errorf("stats epoch = %d, want 42", pv.StatsEpoch)
	}
	if len(pv.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2", len(pv.Clauses))
	}
	var sawBind bool
	for _, c := range pv.Clauses {
		if c.Op == "bind-join" {
			sawBind = true
			if c.BindKeys <= 0 {
				t.Errorf("bind-join clause without key estimate: %+v", c)
			}
		}
	}
	if !sawBind {
		t.Errorf("expected a bind-join clause (FKV is key-only): %+v", pv.Clauses)
	}
	if !strings.Contains(plan.Explain(), "stats epoch 42") {
		t.Errorf("explain lacks stats epoch:\n%s", plan.Explain())
	}
}

// BenchmarkPlanner measures one full Build (order + operators + tree) for
// a three-way join; the acceptance bar is <=50us per query.
func BenchmarkPlanner(b *testing.B) {
	p, _, _ := fixture(b)
	r := pivot.NewCQ(atom("Q", v("k"), v("x"), v("y")),
		atom("FRel", v("k"), v("x")),
		atom("FKV", v("k"), v("y")))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Build(r); err != nil {
			b.Fatal(err)
		}
	}
}
