// Package translate turns a conjunctive rewriting over fragment predicates
// into an executable physical plan (paper §III, "Making rewritings
// executable"): it groups atoms per store, delegates the largest subquery
// each store supports natively (relational and parallel stores take whole
// joins; key-value, document and full-text stores take single accesses),
// orders accesses so that binding-pattern restrictions are satisfied,
// inserts BindJoin operators for dependent accesses, and picks the cheapest
// plan among alternative rewritings using the statistics-based cost model.
package translate

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engines/docstore"
	"repro/internal/engines/engine"
	"repro/internal/engines/kvstore"
	"repro/internal/engines/parstore"
	"repro/internal/engines/relstore"
	"repro/internal/engines/textstore"
	"repro/internal/obs"
	"repro/internal/value"
)

// Stores registers the engine instances by name, typed per kind so the
// planner can issue native requests.
type Stores struct {
	Rel  map[string]*relstore.Store
	KV   map[string]*kvstore.Store
	Doc  map[string]*docstore.Store
	Text map[string]*textstore.Store
	Par  map[string]*parstore.Store
}

// NewStores returns an empty registry.
func NewStores() *Stores {
	return &Stores{
		Rel:  map[string]*relstore.Store{},
		KV:   map[string]*kvstore.Store{},
		Doc:  map[string]*docstore.Store{},
		Text: map[string]*textstore.Store{},
		Par:  map[string]*parstore.Store{},
	}
}

// AddRel registers a relational store.
func (s *Stores) AddRel(st *relstore.Store) { s.Rel[st.Name()] = st }

// AddKV registers a key-value store.
func (s *Stores) AddKV(st *kvstore.Store) { s.KV[st.Name()] = st }

// AddDoc registers a document store.
func (s *Stores) AddDoc(st *docstore.Store) { s.Doc[st.Name()] = st }

// AddText registers a full-text store.
func (s *Stores) AddText(st *textstore.Store) { s.Text[st.Name()] = st }

// AddPar registers a parallel store.
func (s *Stores) AddPar(st *parstore.Store) { s.Par[st.Name()] = st }

// Engine returns the generic engine interface for a store name.
func (s *Stores) Engine(name string) (engine.Engine, bool) {
	if st, ok := s.Rel[name]; ok {
		return st, true
	}
	if st, ok := s.KV[name]; ok {
		return st, true
	}
	if st, ok := s.Doc[name]; ok {
		return st, true
	}
	if st, ok := s.Text[name]; ok {
		return st, true
	}
	if st, ok := s.Par[name]; ok {
		return st, true
	}
	return nil, false
}

// All returns every registered engine.
func (s *Stores) All() []engine.Engine {
	var out []engine.Engine
	for _, st := range s.Rel {
		out = append(out, st)
	}
	for _, st := range s.KV {
		out = append(out, st)
	}
	for _, st := range s.Doc {
		out = append(out, st)
	}
	for _, st := range s.Text {
		out = append(out, st)
	}
	for _, st := range s.Par {
		out = append(out, st)
	}
	return out
}

// KVKey renders a value as a key-value store key. The loader and the
// planner must agree on this encoding.
func KVKey(v value.Value) string { return v.Key() }

// timed wraps a successfully opened store access so its wall time (open
// to stream end) lands in the store's latency histogram — the shared
// tail of every accessBatch branch.
func timed(h *obs.Histogram, it engine.BatchIterator, err error) (engine.BatchIterator, error) {
	if err != nil {
		return nil, err
	}
	return engine.TimeBatches(h, it), nil
}

// accessBatch issues a single-fragment access with equality filters on
// view columns, on each store's native batch path. This is the uniform
// entry point BindJoin fetches and leaf sources go through. ctx bounds
// the store's simulated service time (and injected stalls); extra, when
// non-nil, additionally attributes the store's work to the calling
// execution. Every successful access is timed into the owning store's
// per-request latency histogram.
func (s *Stores) accessBatch(ctx context.Context, frag *catalog.Fragment, filters []engine.EqFilter, extra *engine.Counters) (engine.BatchIterator, error) {
	switch frag.Layout.Kind {
	case catalog.LayoutRel:
		st, ok := s.Rel[frag.Store]
		if !ok {
			return nil, fmt.Errorf("translate: no relational store %q", frag.Store)
		}
		it, err := st.SelectBatchCounted(ctx, frag.Layout.Collection, filters, nil, extra)
		return timed(st.LatencyHistogram(), it, err)

	case catalog.LayoutPar:
		st, ok := s.Par[frag.Store]
		if !ok {
			return nil, fmt.Errorf("translate: no parallel store %q", frag.Store)
		}
		it, err := st.SelectBatchCounted(ctx, frag.Layout.Collection, filters, nil, extra)
		return timed(st.LatencyHistogram(), it, err)

	case catalog.LayoutKV:
		st, ok := s.KV[frag.Store]
		if !ok {
			return nil, fmt.Errorf("translate: no key-value store %q", frag.Store)
		}
		var key value.Value
		rest := make([]engine.EqFilter, 0, len(filters))
		for _, f := range filters {
			if f.Col == frag.Layout.KeyCol {
				key = f.Val
			} else {
				rest = append(rest, f)
			}
		}
		if key == nil {
			return nil, fmt.Errorf("translate: key-value fragment %q accessed without its key (column %d)",
				frag.Name, frag.Layout.KeyCol)
		}
		kit, err := st.GetBatchCounted(ctx, frag.Layout.Collection, KVKey(key), extra)
		it, err := timed(st.LatencyHistogram(), kit, err)
		if err != nil {
			return nil, err
		}
		if len(rest) == 0 {
			return it, nil
		}
		return &engine.BatchFilter{In: it, Filters: rest}, nil

	case catalog.LayoutDoc:
		st, ok := s.Doc[frag.Store]
		if !ok {
			return nil, fmt.Errorf("translate: no document store %q", frag.Store)
		}
		pf := make([]docstore.PathFilter, 0, len(filters))
		for _, f := range filters {
			if f.Col < 0 || f.Col >= len(frag.Layout.DocPaths) {
				return nil, fmt.Errorf("translate: filter column %d outside doc layout of %q", f.Col, frag.Name)
			}
			pf = append(pf, docstore.PathFilter{Path: frag.Layout.DocPaths[f.Col], Val: f.Val})
		}
		it, err := st.FindTuplesBatchCounted(ctx, frag.Layout.Collection, pf, frag.Layout.DocPaths, extra)
		return timed(st.LatencyHistogram(), it, err)

	case catalog.LayoutText:
		st, ok := s.Text[frag.Store]
		if !ok {
			return nil, fmt.Errorf("translate: no full-text store %q", frag.Store)
		}
		q := textstore.Query{Project: frag.Layout.Columns}
		for _, f := range filters {
			if f.Col < 0 || f.Col >= len(frag.Layout.Columns) {
				return nil, fmt.Errorf("translate: filter column %d outside text layout of %q", f.Col, frag.Name)
			}
			q.Fields = append(q.Fields, textstore.FieldFilter{
				Field: frag.Layout.Columns[f.Col], Val: f.Val})
		}
		it, err := st.SearchBatchCounted(ctx, frag.Layout.Collection, q, extra)
		return timed(st.LatencyHistogram(), it, err)

	default:
		return nil, fmt.Errorf("translate: unsupported layout %v", frag.Layout.Kind)
	}
}
