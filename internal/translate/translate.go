package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engines/engine"
	"repro/internal/exec"
	"repro/internal/pivot"
	"repro/internal/value"
)

// Planner translates rewritings into executable plans and costs them.
// maxDistinctHint caps the pre-sized dedup table of the final Distinct:
// estimates are unclamped products and can vastly exceed real outputs.
const maxDistinctHint = 1 << 20

type Planner struct {
	Catalog *catalog.Catalog
	Stores  *Stores
	// DisableDelegation turns off multi-atom subquery push-down: every
	// fragment is accessed individually and all joins run in the mediator.
	// Used by the delegation ablation benchmark; production keeps it off.
	DisableDelegation bool
	// FixedOrder disables the greedy cost-based clause orderer: the plan
	// takes the first feasible order in body order with the pre-cost-model
	// operator heuristics (bind join only when the access pattern forces
	// it, hash joins always building the new input). Ablation baseline for
	// the planner benchmarks; production keeps it off.
	FixedOrder bool
	// DataEpoch, when set, stamps each plan with the data generation its
	// statistics snapshot was read under; the drift re-planning loop in
	// core keys off it.
	DataEpoch func() uint64
}

// ClauseScore is the planner's provenance for one placed clause: which
// operator was chosen, why (estimated rows and step cost), and through
// which access path.
type ClauseScore struct {
	Atom     string `json:"atom"`
	Fragment string `json:"fragment"`
	Store    string `json:"store"`
	// Access is the access path: scan, index, or key.
	Access string `json:"access"`
	// Op is the operator: access, hash-join, bind-join, or delegate.
	Op string `json:"op"`
	// BuildSide reports which hash-join input is materialized (left =
	// the accumulated subplan, right = this clause's fetch).
	BuildSide string `json:"buildSide,omitempty"`
	// BindKeys is the estimated number of distinct dependent fetches.
	BindKeys float64 `json:"bindKeys,omitempty"`
	// EstRows is the estimated intermediate cardinality after this clause.
	EstRows float64 `json:"estRows"`
	// StepCost is this clause's share of the plan cost.
	StepCost float64 `json:"stepCost"`
}

// Provenance is the JSON-ready planner report surfaced by explain.
type Provenance struct {
	Rewriting  string        `json:"rewriting"`
	Cost       float64       `json:"cost"`
	EstRows    float64       `json:"estRows"`
	StatsEpoch uint64        `json:"statsEpoch"`
	FixedOrder bool          `json:"fixedOrder,omitempty"`
	Clauses    []ClauseScore `json:"clauses"`
}

// Plan is an executable physical plan for one rewriting.
type Plan struct {
	// Root is the operator tree.
	Root exec.Node
	// Rewriting is the view-level conjunctive query the plan evaluates.
	Rewriting pivot.CQ
	// Cost is the estimated total cost (unitless work units).
	Cost float64
	// EstRows is the estimated output cardinality.
	EstRows float64
	// Order is the feasible atom evaluation order used.
	Order []int
	// Delegations counts multi-atom subqueries pushed to one store.
	Delegations int
	// Clauses records the per-clause scores in evaluation order.
	Clauses []ClauseScore
	// StatsEpoch is the data generation the plan's statistics snapshot was
	// read under (0 when the planner has no epoch source).
	StatsEpoch uint64
	// FixedOrder marks plans built by the ablation baseline.
	FixedOrder bool
}

// Explain renders the plan: the rewriting, the clause-by-clause planner
// provenance (order, access path, operator choice, per-step score), and
// the physical operator tree.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rewriting: %s\n", p.Rewriting)
	fmt.Fprintf(&sb, "est. cost: %.2f, est. rows: %.1f (stats epoch %d)\n", p.Cost, p.EstRows, p.StatsEpoch)
	for i, c := range p.Clauses {
		fmt.Fprintf(&sb, "  %d. %s [%s.%s] op=%s", i+1, c.Atom, c.Store, c.Fragment, c.Op)
		if c.BuildSide != "" {
			fmt.Fprintf(&sb, " build=%s", c.BuildSide)
		}
		if c.BindKeys > 0 {
			fmt.Fprintf(&sb, " keys~%.0f", c.BindKeys)
		}
		fmt.Fprintf(&sb, " access=%s est rows=%.1f cost=%.2f\n", c.Access, c.EstRows, c.StepCost)
	}
	sb.WriteString(exec.Explain(p.Root))
	return sb.String()
}

// String renders the plan (alias of Explain).
func (p *Plan) String() string { return p.Explain() }

// Provenance returns the plan's JSON-ready planner report.
func (p *Plan) Provenance() *Provenance {
	return &Provenance{
		Rewriting:  p.Rewriting.String(),
		Cost:       p.Cost,
		EstRows:    p.EstRows,
		StatsEpoch: p.StatsEpoch,
		FixedOrder: p.FixedOrder,
		Clauses:    p.Clauses,
	}
}

// Build translates one rewriting into a plan: the greedy cost-based
// orderer picks the clause order and the per-edge operators, then the
// operator tree is assembled to match its choices.
func (p *Planner) Build(r pivot.CQ) (*Plan, error) { return p.build(r, nil) }

// BuildOrdered builds a plan reusing a pre-chosen clause order instead of
// searching. Prepared statements use this on every bind: the order was
// picked once at prepare time, and since all binds place constants in the
// same positions, it stays valid — only the per-clause operator choices
// are re-derived (a linear pass).
func (p *Planner) BuildOrdered(r pivot.CQ, order []int) (*Plan, error) { return p.build(r, order) }

func (p *Planner) build(r pivot.CQ, orderHint []int) (*Plan, error) {
	frags := make([]*catalog.Fragment, len(r.Body))
	for i, a := range r.Body {
		f, ok := p.Catalog.Get(a.Pred)
		if !ok {
			return nil, fmt.Errorf("translate: rewriting references unknown fragment %q", a.Pred)
		}
		if a.Arity() != f.View.Def.Head.Arity() {
			return nil, fmt.Errorf("translate: atom %v arity mismatch with fragment %q", a, f.Name)
		}
		frags[i] = f
	}
	cm := p.newCostModel()
	var (
		order   []int
		choices []clauseChoice
		cost    float64
		rows    float64
		err     error
	)
	if orderHint != nil {
		order, choices, cost, rows, err = cm.orderGiven(r, frags, orderHint)
	} else {
		order, choices, cost, rows, err = cm.orderAtoms(r, frags, p.FixedOrder)
	}
	if err != nil {
		return nil, err
	}
	choiceAt := make(map[int]clauseChoice, len(order))
	for i, ai := range order {
		choiceAt[ai] = choices[i]
	}

	groups := p.groupForDelegation(r, frags, order)
	var root exec.Node
	delegations := 0
	delegated := map[int]bool{}
	for _, g := range groups {
		var node exec.Node
		var err error
		if len(g) > 1 {
			node, err = p.buildDelegatedGroup(r, frags, g)
			delegations++
			for _, ai := range g {
				delegated[ai] = true
			}
		} else {
			ai := g[0]
			ch := choiceAt[ai]
			if root != nil && ch.op == opBind {
				root, err = p.buildBindJoin(root, r.Body[ai], frags[ai], ch.bindPos)
				if err != nil {
					return nil, err
				}
				continue
			}
			node, err = p.buildAtomLeaf(r.Body[ai], frags[ai])
			if err == nil && root != nil {
				// Hash join, build side = the estimated-smaller input (the
				// right argument is the materialized one).
				left, right, side := root, node, "right"
				if ch.op == opHash && ch.buildLeft {
					left, right, side = node, root, "left"
				}
				hj, jerr := exec.NewHashJoin(left, right)
				if jerr != nil {
					return nil, jerr
				}
				hj.Desc = fmt.Sprintf("build=%s ~%.0f rows", side, ch.buildRows)
				root = hj
				continue
			}
		}
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = node
		} else {
			hj, err := exec.NewHashJoin(root, node)
			if err != nil {
				return nil, err
			}
			root = hj
		}
	}
	if root == nil {
		return nil, fmt.Errorf("translate: empty rewriting")
	}

	final, err := p.buildHead(root, r.Head)
	if err != nil {
		return nil, err
	}
	clauses := make([]ClauseScore, len(order))
	for i, ai := range order {
		ch := choices[i]
		cs := ClauseScore{
			Atom:     r.Body[ai].String(),
			Fragment: frags[ai].Name,
			Store:    frags[ai].Store,
			Access:   ch.access.String(),
			EstRows:  ch.outCard,
			StepCost: ch.stepCost,
		}
		switch {
		case delegated[ai]:
			cs.Op = "delegate"
		case ch.op == opLeaf:
			cs.Op = "access"
		case ch.op == opBind:
			cs.Op = "bind-join"
			cs.BindKeys = ch.bindKeys
		default:
			cs.Op = "hash-join"
			if ch.buildLeft {
				cs.BuildSide = "left"
			} else {
				cs.BuildSide = "right"
			}
		}
		clauses[i] = cs
	}
	var epoch uint64
	if p.DataEpoch != nil {
		epoch = p.DataEpoch()
	}
	// Clamp the dedup-table hint: cardinality estimates are unbounded
	// products and must not pre-allocate an arbitrarily large map.
	sizeHint := 0
	if rows > 0 {
		if rows < maxDistinctHint {
			sizeHint = int(rows)
		} else {
			sizeHint = maxDistinctHint
		}
	}
	return &Plan{
		Root:        &exec.Distinct{In: final, SizeHint: sizeHint},
		Rewriting:   r,
		Cost:        cost,
		EstRows:     rows,
		Order:       order,
		Delegations: delegations,
		Clauses:     clauses,
		StatsEpoch:  epoch,
		FixedOrder:  p.FixedOrder,
	}, nil
}

// ChooseBest builds plans for all rewritings and returns the cheapest.
// Rewritings and clause orders are costed jointly under the same model;
// equal-cost plans tie-break on the canonical rewriting string, so the
// choice is deterministic regardless of enumeration order.
func (p *Planner) ChooseBest(rewritings []pivot.CQ) (*Plan, []*Plan, error) {
	var plans []*Plan
	var firstErr error
	for _, r := range rewritings {
		pl, err := p.Build(r)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		plans = append(plans, pl)
	}
	if len(plans) == 0 {
		if firstErr != nil {
			return nil, nil, firstErr
		}
		return nil, nil, fmt.Errorf("translate: no executable plan")
	}
	sort.SliceStable(plans, func(i, j int) bool {
		if plans[i].Cost != plans[j].Cost {
			return plans[i].Cost < plans[j].Cost
		}
		return plans[i].Rewriting.String() < plans[j].Rewriting.String()
	})
	return plans[0], plans, nil
}

// groupForDelegation merges maximal runs of consecutive (in feasible order)
// atoms living in the same CapJoin-capable store into delegation groups.
func (p *Planner) groupForDelegation(r pivot.CQ, frags []*catalog.Fragment, order []int) [][]int {
	var groups [][]int
	if p.DisableDelegation {
		for _, ai := range order {
			groups = append(groups, []int{ai})
		}
		return groups
	}
	for _, ai := range order {
		f := frags[ai]
		eng, ok := p.Stores.Engine(f.Store)
		joinable := ok && eng.Capabilities().Has(engine.CapJoin) && f.Access == ""
		if joinable && len(groups) > 0 {
			last := groups[len(groups)-1]
			lastFrag := frags[last[0]]
			lastEng, lok := p.Stores.Engine(lastFrag.Store)
			if lok && lastFrag.Store == f.Store && lastEng.Capabilities().Has(engine.CapJoin) && lastFrag.Access == "" && len(last) >= 1 {
				groups[len(groups)-1] = append(last, ai)
				continue
			}
		}
		groups = append(groups, []int{ai})
	}
	return groups
}

// buildAtomLeaf creates a Source for one atom: constants become pushed
// filters, repeated variables residual column equalities, and the output
// schema names the first occurrence of each variable.
func (p *Planner) buildAtomLeaf(a pivot.Atom, f *catalog.Fragment) (exec.Node, error) {
	rawSchema, filters, eqCols, keep, err := atomAccessSpec(a)
	if err != nil {
		return nil, err
	}
	frag := f
	src := &exec.Source{
		Name: fmt.Sprintf("%s.access(%s)", f.Store, f.Name),
		Out:  rawSchema,
		BatchFn: func(ec *exec.Ctx) (engine.BatchIterator, error) {
			return p.Stores.accessBatch(ec.Ctx(), frag, filters, ec.StoreCounters(frag.Store))
		},
	}
	var node exec.Node = src
	if len(eqCols) > 0 {
		node = &exec.Select{In: node, EqCols: eqCols}
	}
	if len(keep) != len(rawSchema) {
		names := make([]string, len(keep))
		for i, pos := range keep {
			names[i] = rawSchema[pos]
		}
		proj, err := exec.NewProject(node, names)
		if err != nil {
			return nil, err
		}
		node = proj
	}
	return node, nil
}

// atomAccessSpec analyses an atom: raw per-position column names (repeated
// variables get synthetic names), pushed filters for constants, residual
// column equalities for repeated variables, and the positions to keep.
func atomAccessSpec(a pivot.Atom) (exec.Schema, []engine.EqFilter, [][2]int, []int, error) {
	raw := make(exec.Schema, len(a.Args))
	var filters []engine.EqFilter
	var eqCols [][2]int
	var keep []int
	firstPos := map[pivot.Var]int{}
	for pos, t := range a.Args {
		switch tt := t.(type) {
		case pivot.Const:
			raw[pos] = fmt.Sprintf("_c%d", pos)
			filters = append(filters, engine.EqFilter{Col: pos, Val: constToValue(tt)})
		case pivot.Var:
			if fp, seen := firstPos[tt]; seen {
				raw[pos] = fmt.Sprintf("_dup%d", pos)
				eqCols = append(eqCols, [2]int{fp, pos})
			} else {
				firstPos[tt] = pos
				raw[pos] = string(tt)
				keep = append(keep, pos)
			}
		default:
			return nil, nil, nil, nil, fmt.Errorf("translate: atom %v contains a labeled null", a)
		}
	}
	return raw, filters, eqCols, keep, nil
}

// buildBindJoin wires a dependent access: the given atom positions (the
// access pattern's variable 'b' positions plus any planner-chosen
// selective join columns) are fed from the left plan per distinct key;
// constants are pushed as filters.
func (p *Planner) buildBindJoin(left exec.Node, a pivot.Atom, f *catalog.Fragment, bindAt []int) (exec.Node, error) {
	rawSchema, constFilters, eqCols, keep, err := atomAccessSpec(a)
	if err != nil {
		return nil, err
	}
	var bindVars []string
	var bindPos []int
	for _, pos := range bindAt {
		if pos >= len(a.Args) {
			return nil, fmt.Errorf("translate: bind position %d outside atom %v", pos, a)
		}
		v, ok := a.Args[pos].(pivot.Var)
		if !ok {
			return nil, fmt.Errorf("translate: bind position %d of %v is not a variable", pos, a)
		}
		if left.Schema().Pos(string(v)) < 0 {
			return nil, fmt.Errorf("translate: bind variable %s of %v not produced upstream", v, a)
		}
		bindVars = append(bindVars, string(v))
		bindPos = append(bindPos, pos)
	}
	keepNames := make(exec.Schema, len(keep))
	for i, pos := range keep {
		keepNames[i] = rawSchema[pos]
	}
	frag := f
	fetch := func(ec *exec.Ctx, bind value.Tuple) (engine.BatchIterator, error) {
		filters := append([]engine.EqFilter(nil), constFilters...)
		for i, pos := range bindPos {
			filters = append(filters, engine.EqFilter{Col: pos, Val: bind[i]})
		}
		it, err := p.Stores.accessBatch(ec.Ctx(), frag, filters, ec.StoreCounters(frag.Store))
		if err != nil {
			return nil, err
		}
		// Residual repeated-variable checks (shared engine.BatchFilter —
		// the same predicate exec.Select uses), then keep first occurrences.
		var wrapped engine.BatchIterator = it
		if len(eqCols) > 0 {
			wrapped = &engine.BatchFilter{In: wrapped, EqCols: eqCols}
		}
		return &engine.BatchProject{In: wrapped, Cols: keep}, nil
	}
	bj, err := exec.NewBindJoin(left, bindVars, keepNames, fetch)
	if err != nil {
		return nil, err
	}
	// Store attribution for EXPLAIN trees: the dependent access's store
	// and fragment show up in the bind join's label.
	bj.Desc = fmt.Sprintf("%s.fetch(%s)", f.Store, f.Name)
	return bj, nil
}

// buildDelegatedGroup pushes several same-store atoms as one native
// subquery (the "largest subquery that can be delegated", paper §III).
func (p *Planner) buildDelegatedGroup(r pivot.CQ, frags []*catalog.Fragment, group []int) (exec.Node, error) {
	storeName := frags[group[0]].Store
	dq := engine.DQuery{}
	var outVars []string
	seen := map[string]bool{}
	for _, ai := range group {
		a := r.Body[ai]
		f := frags[ai]
		da := engine.DAtom{Collection: f.Layout.Collection}
		for _, t := range a.Args {
			switch tt := t.(type) {
			case pivot.Const:
				da.Terms = append(da.Terms, engine.DConst(constToValue(tt)))
			case pivot.Var:
				name := string(tt)
				da.Terms = append(da.Terms, engine.DVar(name))
				if !seen[name] {
					seen[name] = true
					outVars = append(outVars, name)
				}
			default:
				return nil, fmt.Errorf("translate: atom %v contains a labeled null", a)
			}
		}
		dq.Atoms = append(dq.Atoms, da)
	}
	dq.Out = outVars

	var open func(ec *exec.Ctx) (engine.BatchIterator, error)
	if st, ok := p.Stores.Rel[storeName]; ok {
		open = func(ec *exec.Ctx) (engine.BatchIterator, error) {
			it, err := st.QueryBatchCounted(ec.Ctx(), dq, ec.StoreCounters(storeName))
			return timed(st.LatencyHistogram(), it, err)
		}
	} else if st, ok := p.Stores.Par[storeName]; ok {
		open = func(ec *exec.Ctx) (engine.BatchIterator, error) {
			it, err := st.QueryBatchCounted(ec.Ctx(), dq, ec.StoreCounters(storeName))
			return timed(st.LatencyHistogram(), it, err)
		}
	} else {
		return nil, fmt.Errorf("translate: store %q cannot take delegated joins", storeName)
	}
	return &exec.Source{
		Name:    fmt.Sprintf("%s.delegate(%d atoms)", storeName, len(group)),
		Out:     exec.Schema(outVars),
		BatchFn: open,
	}, nil
}

// buildHead projects the head variables and appends constant head columns.
func (p *Planner) buildHead(root exec.Node, head pivot.Atom) (exec.Node, error) {
	var varCols []string
	constCols := map[int]value.Value{}
	for i, t := range head.Args {
		switch tt := t.(type) {
		case pivot.Var:
			varCols = append(varCols, string(tt))
		case pivot.Const:
			constCols[i] = constToValue(tt)
		default:
			return nil, fmt.Errorf("translate: head %v contains a labeled null", head)
		}
	}
	node, err := exec.NewProject(root, varCols)
	if err != nil {
		return nil, err
	}
	if len(constCols) == 0 {
		return node, nil
	}
	// Interleave the constant head columns among the projected variables
	// with the shared batch extender.
	out := make(exec.Schema, len(head.Args))
	for i, t := range head.Args {
		if _, isConst := constCols[i]; isConst {
			out[i] = fmt.Sprintf("_hc%d", i)
		} else {
			out[i] = string(t.(pivot.Var))
		}
	}
	return exec.NewExtendConsts(node, out, constCols)
}

func constToValue(c pivot.Const) value.Value { return value.Of(c.V) }

func hasIndexCol(f *catalog.Fragment, pos int) bool {
	for _, c := range f.Layout.IndexCols {
		if c == pos {
			return true
		}
	}
	return false
}
