package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engines/engine"
	"repro/internal/exec"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/stats"
	"repro/internal/value"
)

// Planner translates rewritings into executable plans and costs them.
// maxDistinctHint caps the pre-sized dedup table of the final Distinct:
// estimates are unclamped products and can vastly exceed real outputs.
const maxDistinctHint = 1 << 20

type Planner struct {
	Catalog *catalog.Catalog
	Stores  *Stores
	// DisableDelegation turns off multi-atom subquery push-down: every
	// fragment is accessed individually and all joins run in the mediator.
	// Used by the delegation ablation benchmark; production keeps it off.
	DisableDelegation bool
}

// Plan is an executable physical plan for one rewriting.
type Plan struct {
	// Root is the operator tree.
	Root exec.Node
	// Rewriting is the view-level conjunctive query the plan evaluates.
	Rewriting pivot.CQ
	// Cost is the estimated total cost (unitless work units).
	Cost float64
	// EstRows is the estimated output cardinality.
	EstRows float64
	// Order is the feasible atom evaluation order used.
	Order []int
	// Delegations counts multi-atom subqueries pushed to one store.
	Delegations int
}

// Explain renders the plan.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rewriting: %s\n", p.Rewriting)
	fmt.Fprintf(&sb, "est. cost: %.2f, est. rows: %.1f\n", p.Cost, p.EstRows)
	sb.WriteString(exec.Explain(p.Root))
	return sb.String()
}

// Build translates one rewriting into a plan.
func (p *Planner) Build(r pivot.CQ) (*Plan, error) {
	frags := make([]*catalog.Fragment, len(r.Body))
	for i, a := range r.Body {
		f, ok := p.Catalog.Get(a.Pred)
		if !ok {
			return nil, fmt.Errorf("translate: rewriting references unknown fragment %q", a.Pred)
		}
		if a.Arity() != f.View.Def.Head.Arity() {
			return nil, fmt.Errorf("translate: atom %v arity mismatch with fragment %q", a, f.Name)
		}
		frags[i] = f
	}
	order, ok := rewrite.Feasible(r.Body, p.Catalog.AccessPatterns())
	if !ok {
		return nil, fmt.Errorf("translate: rewriting %v is infeasible under access patterns", r)
	}

	groups := p.groupForDelegation(r, frags, order)
	var root exec.Node
	delegations := 0
	for _, g := range groups {
		var node exec.Node
		var err error
		if len(g) > 1 {
			node, err = p.buildDelegatedGroup(r, frags, g)
			delegations++
		} else {
			ai := g[0]
			if root != nil && p.needsBindJoin(r.Body[ai], frags[ai], root.Schema()) {
				root, err = p.buildBindJoin(root, r.Body[ai], frags[ai])
				if err != nil {
					return nil, err
				}
				continue
			}
			node, err = p.buildAtomLeaf(r.Body[ai], frags[ai])
		}
		if err != nil {
			return nil, err
		}
		if root == nil {
			root = node
		} else {
			root, err = exec.NewHashJoin(root, node)
			if err != nil {
				return nil, err
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("translate: empty rewriting")
	}

	final, err := p.buildHead(root, r.Head)
	if err != nil {
		return nil, err
	}
	cost, rows := p.estimate(r, frags, order, delegations)
	// Clamp the dedup-table hint: cardinality estimates are unbounded
	// products and must not pre-allocate an arbitrarily large map.
	sizeHint := 0
	if rows > 0 {
		if rows < maxDistinctHint {
			sizeHint = int(rows)
		} else {
			sizeHint = maxDistinctHint
		}
	}
	return &Plan{
		Root:        &exec.Distinct{In: final, SizeHint: sizeHint},
		Rewriting:   r,
		Cost:        cost,
		EstRows:     rows,
		Order:       order,
		Delegations: delegations,
	}, nil
}

// ChooseBest builds plans for all rewritings and returns the cheapest.
func (p *Planner) ChooseBest(rewritings []pivot.CQ) (*Plan, []*Plan, error) {
	var plans []*Plan
	var firstErr error
	for _, r := range rewritings {
		pl, err := p.Build(r)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		plans = append(plans, pl)
	}
	if len(plans) == 0 {
		if firstErr != nil {
			return nil, nil, firstErr
		}
		return nil, nil, fmt.Errorf("translate: no executable plan")
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Cost < plans[j].Cost })
	return plans[0], plans, nil
}

// groupForDelegation merges maximal runs of consecutive (in feasible order)
// atoms living in the same CapJoin-capable store into delegation groups.
func (p *Planner) groupForDelegation(r pivot.CQ, frags []*catalog.Fragment, order []int) [][]int {
	var groups [][]int
	if p.DisableDelegation {
		for _, ai := range order {
			groups = append(groups, []int{ai})
		}
		return groups
	}
	for _, ai := range order {
		f := frags[ai]
		eng, ok := p.Stores.Engine(f.Store)
		joinable := ok && eng.Capabilities().Has(engine.CapJoin) && f.Access == ""
		if joinable && len(groups) > 0 {
			last := groups[len(groups)-1]
			lastFrag := frags[last[0]]
			lastEng, lok := p.Stores.Engine(lastFrag.Store)
			if lok && lastFrag.Store == f.Store && lastEng.Capabilities().Has(engine.CapJoin) && lastFrag.Access == "" && len(last) >= 1 {
				groups[len(groups)-1] = append(last, ai)
				continue
			}
		}
		groups = append(groups, []int{ai})
	}
	return groups
}

// buildAtomLeaf creates a Source for one atom: constants become pushed
// filters, repeated variables residual column equalities, and the output
// schema names the first occurrence of each variable.
func (p *Planner) buildAtomLeaf(a pivot.Atom, f *catalog.Fragment) (exec.Node, error) {
	rawSchema, filters, eqCols, keep, err := atomAccessSpec(a)
	if err != nil {
		return nil, err
	}
	frag := f
	src := &exec.Source{
		Name: fmt.Sprintf("%s.access(%s)", f.Store, f.Name),
		Out:  rawSchema,
		BatchFn: func(ec *exec.Ctx) (engine.BatchIterator, error) {
			return p.Stores.accessBatch(ec.Ctx(), frag, filters, ec.StoreCounters(frag.Store))
		},
	}
	var node exec.Node = src
	if len(eqCols) > 0 {
		node = &exec.Select{In: node, EqCols: eqCols}
	}
	if len(keep) != len(rawSchema) {
		names := make([]string, len(keep))
		for i, pos := range keep {
			names[i] = rawSchema[pos]
		}
		proj, err := exec.NewProject(node, names)
		if err != nil {
			return nil, err
		}
		node = proj
	}
	return node, nil
}

// atomAccessSpec analyses an atom: raw per-position column names (repeated
// variables get synthetic names), pushed filters for constants, residual
// column equalities for repeated variables, and the positions to keep.
func atomAccessSpec(a pivot.Atom) (exec.Schema, []engine.EqFilter, [][2]int, []int, error) {
	raw := make(exec.Schema, len(a.Args))
	var filters []engine.EqFilter
	var eqCols [][2]int
	var keep []int
	firstPos := map[pivot.Var]int{}
	for pos, t := range a.Args {
		switch tt := t.(type) {
		case pivot.Const:
			raw[pos] = fmt.Sprintf("_c%d", pos)
			filters = append(filters, engine.EqFilter{Col: pos, Val: constToValue(tt)})
		case pivot.Var:
			if fp, seen := firstPos[tt]; seen {
				raw[pos] = fmt.Sprintf("_dup%d", pos)
				eqCols = append(eqCols, [2]int{fp, pos})
			} else {
				firstPos[tt] = pos
				raw[pos] = string(tt)
				keep = append(keep, pos)
			}
		default:
			return nil, nil, nil, nil, fmt.Errorf("translate: atom %v contains a labeled null", a)
		}
	}
	return raw, filters, eqCols, keep, nil
}

// needsBindJoin reports whether the atom's fragment has 'b' positions
// holding variables (which must then be supplied per left tuple).
func (p *Planner) needsBindJoin(a pivot.Atom, f *catalog.Fragment, left exec.Schema) bool {
	for _, pos := range f.Access.BoundPositions() {
		if pos < len(a.Args) {
			if v, ok := a.Args[pos].(pivot.Var); ok && left.Pos(string(v)) >= 0 {
				return true
			}
		}
	}
	return false
}

// buildBindJoin wires a dependent access: bound positions with variables
// are fed from the left plan; constants are pushed as filters.
func (p *Planner) buildBindJoin(left exec.Node, a pivot.Atom, f *catalog.Fragment) (exec.Node, error) {
	rawSchema, constFilters, eqCols, keep, err := atomAccessSpec(a)
	if err != nil {
		return nil, err
	}
	var bindVars []string
	var bindPos []int
	for _, pos := range f.Access.BoundPositions() {
		if pos >= len(a.Args) {
			return nil, fmt.Errorf("translate: pattern position %d outside atom %v", pos, a)
		}
		if v, ok := a.Args[pos].(pivot.Var); ok {
			if left.Schema().Pos(string(v)) < 0 {
				return nil, fmt.Errorf("translate: bind variable %s of %v not produced upstream", v, a)
			}
			bindVars = append(bindVars, string(v))
			bindPos = append(bindPos, pos)
		}
	}
	keepNames := make(exec.Schema, len(keep))
	for i, pos := range keep {
		keepNames[i] = rawSchema[pos]
	}
	frag := f
	fetch := func(ec *exec.Ctx, bind value.Tuple) (engine.BatchIterator, error) {
		filters := append([]engine.EqFilter(nil), constFilters...)
		for i, pos := range bindPos {
			filters = append(filters, engine.EqFilter{Col: pos, Val: bind[i]})
		}
		it, err := p.Stores.accessBatch(ec.Ctx(), frag, filters, ec.StoreCounters(frag.Store))
		if err != nil {
			return nil, err
		}
		// Residual repeated-variable checks (shared engine.BatchFilter —
		// the same predicate exec.Select uses), then keep first occurrences.
		var wrapped engine.BatchIterator = it
		if len(eqCols) > 0 {
			wrapped = &engine.BatchFilter{In: wrapped, EqCols: eqCols}
		}
		return &engine.BatchProject{In: wrapped, Cols: keep}, nil
	}
	bj, err := exec.NewBindJoin(left, bindVars, keepNames, fetch)
	if err != nil {
		return nil, err
	}
	// Store attribution for EXPLAIN trees: the dependent access's store
	// and fragment show up in the bind join's label.
	bj.Desc = fmt.Sprintf("%s.fetch(%s)", f.Store, f.Name)
	return bj, nil
}

// buildDelegatedGroup pushes several same-store atoms as one native
// subquery (the "largest subquery that can be delegated", paper §III).
func (p *Planner) buildDelegatedGroup(r pivot.CQ, frags []*catalog.Fragment, group []int) (exec.Node, error) {
	storeName := frags[group[0]].Store
	dq := engine.DQuery{}
	var outVars []string
	seen := map[string]bool{}
	for _, ai := range group {
		a := r.Body[ai]
		f := frags[ai]
		da := engine.DAtom{Collection: f.Layout.Collection}
		for _, t := range a.Args {
			switch tt := t.(type) {
			case pivot.Const:
				da.Terms = append(da.Terms, engine.DConst(constToValue(tt)))
			case pivot.Var:
				name := string(tt)
				da.Terms = append(da.Terms, engine.DVar(name))
				if !seen[name] {
					seen[name] = true
					outVars = append(outVars, name)
				}
			default:
				return nil, fmt.Errorf("translate: atom %v contains a labeled null", a)
			}
		}
		dq.Atoms = append(dq.Atoms, da)
	}
	dq.Out = outVars

	var open func(ec *exec.Ctx) (engine.BatchIterator, error)
	if st, ok := p.Stores.Rel[storeName]; ok {
		open = func(ec *exec.Ctx) (engine.BatchIterator, error) {
			it, err := st.QueryBatchCounted(ec.Ctx(), dq, ec.StoreCounters(storeName))
			return timed(st.LatencyHistogram(), it, err)
		}
	} else if st, ok := p.Stores.Par[storeName]; ok {
		open = func(ec *exec.Ctx) (engine.BatchIterator, error) {
			it, err := st.QueryBatchCounted(ec.Ctx(), dq, ec.StoreCounters(storeName))
			return timed(st.LatencyHistogram(), it, err)
		}
	} else {
		return nil, fmt.Errorf("translate: store %q cannot take delegated joins", storeName)
	}
	return &exec.Source{
		Name:    fmt.Sprintf("%s.delegate(%d atoms)", storeName, len(group)),
		Out:     exec.Schema(outVars),
		BatchFn: open,
	}, nil
}

// buildHead projects the head variables and appends constant head columns.
func (p *Planner) buildHead(root exec.Node, head pivot.Atom) (exec.Node, error) {
	var varCols []string
	constCols := map[int]value.Value{}
	for i, t := range head.Args {
		switch tt := t.(type) {
		case pivot.Var:
			varCols = append(varCols, string(tt))
		case pivot.Const:
			constCols[i] = constToValue(tt)
		default:
			return nil, fmt.Errorf("translate: head %v contains a labeled null", head)
		}
	}
	node, err := exec.NewProject(root, varCols)
	if err != nil {
		return nil, err
	}
	if len(constCols) == 0 {
		return node, nil
	}
	// Interleave the constant head columns among the projected variables
	// with the shared batch extender.
	out := make(exec.Schema, len(head.Args))
	for i, t := range head.Args {
		if _, isConst := constCols[i]; isConst {
			out[i] = fmt.Sprintf("_hc%d", i)
		} else {
			out[i] = string(t.(pivot.Var))
		}
	}
	return exec.NewExtendConsts(node, out, constCols)
}

func constToValue(c pivot.Const) value.Value { return value.Of(c.V) }

// estimate walks the atoms in evaluation order, accumulating access costs
// and join cardinalities from the fragment statistics.
func (p *Planner) estimate(r pivot.CQ, frags []*catalog.Fragment, order []int, delegations int) (cost, card float64) {
	card = 1
	bound := map[pivot.Var]bool{}
	for _, ai := range order {
		a := r.Body[ai]
		f := frags[ai]
		eng, _ := p.Stores.Engine(f.Store)
		kind := "relational"
		if eng != nil {
			kind = eng.Kind()
		}
		factors := stats.DefaultCostFactors(kind)
		st := f.StatsSnapshot()
		rows := float64(st.Rows)
		if rows < 1 {
			rows = 1
		}

		outRows := rows
		accessKind := stats.AccessScan
		dependent := false
		for pos, t := range a.Args {
			switch tt := t.(type) {
			case pivot.Const:
				outRows /= float64(st.DistinctAt(pos))
				if f.Layout.Kind == catalog.LayoutKV && pos == f.Layout.KeyCol {
					accessKind = stats.AccessKey
				} else if hasIndexCol(f, pos) {
					accessKind = stats.AccessIndex
				}
			case pivot.Var:
				if bound[tt] {
					outRows /= float64(st.DistinctAt(pos))
					if f.Layout.Kind == catalog.LayoutKV && pos == f.Layout.KeyCol {
						accessKind = stats.AccessKey
						dependent = true
					} else if hasIndexCol(f, pos) {
						accessKind = stats.AccessIndex
						dependent = true
					} else if f.Access != "" {
						dependent = true
					}
				}
			}
		}
		if outRows < 0.01 {
			outRows = 0.01
		}
		if dependent {
			// One access per current intermediate tuple.
			n := card
			if n < 1 {
				n = 1
			}
			cost += n * stats.AccessCost(accessKind, factors, rows, outRows)
			card *= outRows
		} else {
			cost += stats.AccessCost(accessKind, factors, rows, outRows)
			newCard := card * outRows
			// Hash-join selectivity on shared bound vars beyond those
			// already accounted as index filters: approximate with the
			// per-variable distinct divide only when not dependent.
			card = newCard
		}
		for _, v := range a.Vars() {
			bound[v] = true
		}
		// Mediator processing per materialized tuple.
		cost += 0.05 * card
	}
	// Delegated groups save round-trips; reward one overhead unit each.
	cost -= float64(delegations) * 2
	if cost < 0 {
		cost = 0
	}
	return cost, card
}

func hasIndexCol(f *catalog.Fragment, pos int) bool {
	for _, c := range f.Layout.IndexCols {
		if c == pos {
			return true
		}
	}
	return false
}
