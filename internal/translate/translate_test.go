package translate

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engines/kvstore"
	"repro/internal/engines/relstore"
	"repro/internal/exec"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/stats"
	"repro/internal/value"
)

func atom(pred string, args ...pivot.Term) pivot.Atom { return pivot.NewAtom(pred, args...) }
func v(name string) pivot.Var                         { return pivot.Var(name) }

func idView(name, over string, arity int) rewrite.View {
	args := make([]pivot.Term, arity)
	for i := range args {
		args[i] = v(string(rune('a' + i)))
	}
	return rewrite.NewView(name, pivot.NewCQ(
		pivot.NewAtom(name, args...), pivot.NewAtom(over, args...)))
}

// fixture: a relational store with R(k, x) indexed on k, and a KV store
// with the same data keyed by k.
func fixture(t testing.TB) (*Planner, *relstore.Store, *kvstore.Store) {
	t.Helper()
	cat := catalog.New()
	stores := NewStores()
	rs := relstore.New("pg")
	ks := kvstore.New("redis")
	stores.AddRel(rs)
	stores.AddKV(ks)

	relFrag := &catalog.Fragment{
		Name: "FRel", Dataset: "d", View: idView("FRel", "R", 2), Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "r", Columns: []string{"k", "x"}, IndexCols: []int{0}},
		Stats:  stats.FragmentStats{Rows: 1000, Distinct: []int64{1000, 50}},
	}
	kvFrag := &catalog.Fragment{
		Name: "FKV", Dataset: "d", View: idView("FKV", "R", 2), Store: "redis",
		Layout: catalog.Layout{Kind: catalog.LayoutKV, Collection: "rkv", KeyCol: 0},
		Access: "bf",
		Stats:  stats.FragmentStats{Rows: 1000, Distinct: []int64{1000, 50}},
	}
	for _, f := range []*catalog.Fragment{relFrag, kvFrag} {
		if err := cat.Register(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.CreateTable("r", "k", "x"); err != nil {
		t.Fatal(err)
	}
	if err := rs.CreateIndex("r", "k"); err != nil {
		t.Fatal(err)
	}
	if err := ks.CreateCollection("rkv"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		row := value.TupleOf(i, i*10)
		if err := rs.Insert("r", row); err != nil {
			t.Fatal(err)
		}
		if err := ks.Append("rkv", KVKey(value.Int(i)), row); err != nil {
			t.Fatal(err)
		}
	}
	return &Planner{Catalog: cat, Stores: stores}, rs, ks
}

func TestBuildSimpleAccess(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x")), atom("FRel", pivot.CInt(3), v("x")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !value.Equal(rows[0][0], value.Int(30)) {
		t.Errorf("rows = %v", rows)
	}
}

func TestBuildKVAccessWithConstKey(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x")), atom("FKV", pivot.CInt(4), v("x")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !value.Equal(rows[0][0], value.Int(40)) {
		t.Errorf("rows = %v", rows)
	}
}

func TestBuildKVWithoutKeyInfeasible(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("k"), v("x")), atom("FKV", v("k"), v("x")))
	if _, err := p.Build(r); err == nil {
		t.Error("KV scan plan accepted")
	}
}

func TestBuildUnknownFragment(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x")), atom("Ghost", v("x")))
	if _, err := p.Build(r); err == nil {
		t.Error("unknown fragment accepted")
	}
}

func TestBuildArityMismatch(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x")), atom("FRel", v("x")))
	if _, err := p.Build(r); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestBuildRepeatedVariable(t *testing.T) {
	p, rs, _ := fixture(t)
	if err := rs.Insert("r", value.TupleOf(77, 77)); err != nil {
		t.Fatal(err)
	}
	r := pivot.NewCQ(atom("Q", v("k")), atom("FRel", v("k"), v("k")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// Rows where k==x: (0,0) and (77,77).
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestBuildHeadConstant(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x"), pivot.CStr("tag")), atom("FRel", pivot.CInt(1), v("x")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !value.Equal(rows[0][1], value.Str("tag")) {
		t.Errorf("rows = %v", rows)
	}
}

func TestChooseBestPrefersKVForKeyLookup(t *testing.T) {
	p, _, _ := fixture(t)
	// Two rewritings answer the key lookup: relational index access vs KV
	// get. The cost model must prefer the KV store.
	rKV := pivot.NewCQ(atom("Q", v("x")), atom("FKV", pivot.CInt(3), v("x")))
	rRel := pivot.NewCQ(atom("Q", v("x")), atom("FRel", pivot.CInt(3), v("x")))
	best, plans, err := p.ChooseBest([]pivot.CQ{rRel, rKV})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	if best.Rewriting.Body[0].Pred != "FKV" {
		t.Errorf("best plan uses %s, want FKV\nrel cost=%v kv cost=%v",
			best.Rewriting.Body[0].Pred, plans[1].Cost, plans[0].Cost)
	}
}

func TestChooseBestSkipsInfeasible(t *testing.T) {
	p, _, _ := fixture(t)
	rBad := pivot.NewCQ(atom("Q", v("k"), v("x")), atom("FKV", v("k"), v("x")))
	rOK := pivot.NewCQ(atom("Q", v("k"), v("x")), atom("FRel", v("k"), v("x")))
	best, _, err := p.ChooseBest([]pivot.CQ{rBad, rOK})
	if err != nil {
		t.Fatal(err)
	}
	if best.Rewriting.Body[0].Pred != "FRel" {
		t.Errorf("best = %v", best.Rewriting)
	}
	if _, _, err := p.ChooseBest([]pivot.CQ{rBad}); err == nil {
		t.Error("all-infeasible rewritings accepted")
	}
}

func TestBindJoinPlanShape(t *testing.T) {
	p, _, _ := fixture(t)
	// FRel produces k; FKV consumes it.
	r := pivot.NewCQ(atom("Q", v("k"), v("x"), v("y")),
		atom("FRel", v("k"), v("x")),
		atom("FKV", v("k"), v("y")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Explain(plan.Root), "BindJoin") {
		t.Errorf("plan lacks BindJoin:\n%s", exec.Explain(plan.Root))
	}
	rows, err := exec.Run(plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	// Every k joins with itself: x and y agree (both i*10).
	if len(rows) != 10 {
		t.Errorf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if !value.Equal(row[1], row[2]) {
			t.Errorf("bindjoin mismatch: %v", row)
		}
	}
}

func TestPlanExplainFields(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.NewCQ(atom("Q", v("x")), atom("FRel", pivot.CInt(3), v("x")))
	plan, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, want := range []string{"rewriting:", "est. cost:", "pg.access(FRel)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestKVKeyDeterministic(t *testing.T) {
	if KVKey(value.Int(3)) != KVKey(value.Int(3)) {
		t.Error("KVKey unstable")
	}
	if KVKey(value.Int(3)) == KVKey(value.Str("3")) {
		t.Error("KVKey collides across types")
	}
}

func TestStoresRegistry(t *testing.T) {
	s := NewStores()
	rs := relstore.New("a")
	s.AddRel(rs)
	if e, ok := s.Engine("a"); !ok || e.Name() != "a" {
		t.Error("Engine lookup failed")
	}
	if _, ok := s.Engine("ghost"); ok {
		t.Error("ghost engine found")
	}
	if len(s.All()) != 1 {
		t.Errorf("All = %d", len(s.All()))
	}
}

func TestDisableDelegationAblation(t *testing.T) {
	p, rs, _ := fixture(t)
	if _, err := rs.CreateTable("s", "k", "y"); err != nil {
		t.Fatal(err)
	}
	if err := rs.InsertMany("s", []value.Tuple{
		value.TupleOf(1, "a"), value.TupleOf(2, "b"),
	}); err != nil {
		t.Fatal(err)
	}
	sFrag := &catalog.Fragment{
		Name: "FS", Dataset: "d", View: idView("FS", "S", 2), Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "s", Columns: []string{"k", "y"}},
		Stats:  stats.FragmentStats{Rows: 2},
	}
	if err := p.Catalog.Register(sFrag); err != nil {
		t.Fatal(err)
	}
	r := pivot.NewCQ(atom("Q", v("k"), v("x"), v("y")),
		atom("FRel", v("k"), v("x")),
		atom("FS", v("k"), v("y")))

	planDelegated, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exec.Explain(planDelegated.Root), "delegate(2 atoms)") {
		t.Errorf("expected delegation:\n%s", exec.Explain(planDelegated.Root))
	}

	p.DisableDelegation = true
	planLocal, err := p.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exec.Explain(planLocal.Root), "delegate") {
		t.Errorf("delegation not disabled:\n%s", exec.Explain(planLocal.Root))
	}
	// Both plans must return the same rows.
	a, err := exec.Run(planDelegated.Root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.Run(planLocal.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("delegated %d rows vs local %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for _, row := range a {
		seen[row.Key()] = true
	}
	for _, row := range b {
		if !seen[row.Key()] {
			t.Errorf("local plan row %v missing from delegated plan", row)
		}
	}
}

func TestAccessErrorPaths(t *testing.T) {
	p, _, _ := fixture(t)
	// KV access without its key must fail at access level too (belt and
	// braces under the feasibility check).
	kvFrag, _ := p.Catalog.Get("FKV")
	if _, err := p.Stores.accessBatch(context.Background(), kvFrag, nil, nil); err == nil {
		t.Error("KV access without key accepted")
	}
	// Unknown store name.
	ghost := &catalog.Fragment{
		Name: "FGhost", Dataset: "d", View: idView("FGhost", "G", 1), Store: "nowhere",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "g", Columns: []string{"a"}},
	}
	if _, err := p.Stores.accessBatch(context.Background(), ghost, nil, nil); err == nil {
		t.Error("access through unknown store accepted")
	}
}

func TestBuildRejectsHeadNull(t *testing.T) {
	p, _, _ := fixture(t)
	r := pivot.CQ{
		Head: pivot.Atom{Pred: "Q", Args: []pivot.Term{pivot.Null(1)}},
		Body: []pivot.Atom{atom("FRel", v("k"), v("x"))},
	}
	if _, err := p.Build(r); err == nil {
		t.Error("head null accepted")
	}
}

func TestEstimatePrefersIndexedFragment(t *testing.T) {
	p, _, _ := fixture(t)
	// FRel has an index on column 0: constant selection there should be
	// estimated cheaper than an unindexed selection on column 1.
	rIndexed := pivot.NewCQ(atom("Q", v("x")), atom("FRel", pivot.CInt(3), v("x")))
	rScan := pivot.NewCQ(atom("Q", v("k")), atom("FRel", v("k"), pivot.CInt(30)))
	pi, err := p.Build(rIndexed)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.Build(rScan)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Cost >= ps.Cost {
		t.Errorf("indexed access (%.2f) should cost less than scan (%.2f)", pi.Cost, ps.Cost)
	}
}
