package value

import "sync"

// BatchCap is the default tuple capacity of pooled batches. A few hundred
// rows amortizes per-call virtual dispatch and cancellation checks while
// keeping one batch comfortably inside the L2 cache.
const BatchCap = 256

// Batch is a reusable slab of tuples — the unit of the vectorized
// execution protocol. Operators fill a batch with up to Cap rows per call
// instead of handing tuples across an interface one at a time.
//
// Ownership rules:
//   - The rows slice (Rows) and the Batch itself are valid only until the
//     next Reset/refill; consumers that keep rows across calls must copy
//     the Tuple headers out (a Tuple is a slice header; copying it is
//     cheap and the underlying values are immutable).
//   - Tuples appended or carved with Alloc are NEVER reused by the batch:
//     retained tuple headers stay valid forever. Reset drops the arena
//     instead of recycling it, so pooling batches cannot corrupt rows a
//     consumer kept.
type Batch struct {
	rows []Tuple
	// arena is the current value slab Alloc carves output tuples from. It
	// is allocated lazily per fill (one allocation amortized over the whole
	// batch) and abandoned — not recycled — on Reset.
	arena []Value
}

// NewBatch creates a batch with the given row capacity (minimum 1).
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	return &Batch{rows: make([]Tuple, 0, capacity)}
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Cap returns the row capacity.
func (b *Batch) Cap() int { return cap(b.rows) }

// Full reports whether the batch reached its capacity.
func (b *Batch) Full() bool { return len(b.rows) == cap(b.rows) }

// Rows returns the filled rows. The slice is valid until the next Reset.
func (b *Batch) Rows() []Tuple { return b.rows }

// Row returns row i.
func (b *Batch) Row(i int) Tuple { return b.rows[i] }

// Append adds a tuple to the batch. The caller must not exceed Cap.
func (b *Batch) Append(t Tuple) { b.rows = append(b.rows, t) }

// AppendAll bulk-appends tuple headers with one memmove. The caller must
// not exceed Cap.
func (b *Batch) AppendAll(rows []Tuple) { b.rows = append(b.rows, rows...) }

// Truncate keeps only the first n rows (no-op when n ≥ Len).
func (b *Batch) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n < len(b.rows) {
		b.rows = b.rows[:n]
	}
}

// Reset empties the batch. The arena is dropped, not recycled: tuples
// carved from it may have escaped to consumers and must stay intact.
func (b *Batch) Reset() {
	b.rows = b.rows[:0]
	b.arena = nil
}

// Carve cuts a zeroed width-tuple from the batch arena without appending
// it to the rows — used by in-place operators that overwrite existing row
// headers. One arena allocation serves a whole batch, replacing a per-row
// make.
//
//lint:hot
func (b *Batch) Carve(width int) Tuple {
	if width <= 0 {
		return Tuple{}
	}
	if len(b.arena)+width > cap(b.arena) {
		// Size the slab for the carves still coming: in-place rewriters
		// (rows already filled) carve once per existing row; appenders
		// start from an empty batch and carve up to its capacity.
		carves := len(b.rows)
		if carves == 0 {
			carves = cap(b.rows)
		}
		n := width * carves
		if n < width {
			n = width
		}
		b.arena = make([]Value, 0, n)
	}
	off := len(b.arena)
	b.arena = b.arena[: off+width : cap(b.arena)]
	return Tuple(b.arena[off : off+width : off+width])
}

// Alloc carves a zeroed width-tuple from the batch arena and appends it to
// the batch, returning it for the caller to fill.
//
//lint:hot
func (b *Batch) Alloc(width int) Tuple {
	t := b.Carve(width)
	b.rows = append(b.rows, t)
	return t
}

var batchPool = sync.Pool{
	New: func() any { return NewBatch(BatchCap) },
}

// GetBatch takes a reset batch of the default capacity from the pool.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// PutBatch resets a batch and returns it to the pool. Only batches of the
// default capacity are pooled; others are left to the GC.
func PutBatch(b *Batch) {
	if b == nil || b.Cap() != BatchCap {
		return
	}
	b.Reset()
	batchPool.Put(b)
}
