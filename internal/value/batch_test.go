package value

import "testing"

func TestBatchAppendAndReset(t *testing.T) {
	b := NewBatch(4)
	if b.Cap() != 4 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: cap=%d len=%d", b.Cap(), b.Len())
	}
	for i := 0; i < 4; i++ {
		b.Append(TupleOf(i))
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("filled batch: len=%d", b.Len())
	}
	if !Equal(b.Row(2)[0], Int(2)) {
		t.Errorf("row 2 = %v", b.Row(2))
	}
	b.Reset()
	if b.Len() != 0 || b.Cap() != 4 {
		t.Errorf("reset batch: len=%d cap=%d", b.Len(), b.Cap())
	}
}

func TestBatchNewBatchMinCapacity(t *testing.T) {
	if NewBatch(0).Cap() != 1 || NewBatch(-5).Cap() != 1 {
		t.Error("capacity floor broken")
	}
}

// Tuples carved from the arena must survive Reset and reuse of the batch:
// the arena is dropped, never recycled.
func TestBatchAllocSurvivesReset(t *testing.T) {
	b := NewBatch(8)
	var kept []Tuple
	for round := 0; round < 3; round++ {
		b.Reset()
		for i := 0; i < 8; i++ {
			row := b.Alloc(2)
			row[0] = Int(round)
			row[1] = Int(i)
			kept = append(kept, row)
		}
	}
	for i, row := range kept {
		wantRound, wantI := Int(i/8), Int(i%8)
		if !Equal(row[0], wantRound) || !Equal(row[1], wantI) {
			t.Fatalf("kept row %d corrupted: %v (want (%v,%v))", i, row, wantRound, wantI)
		}
	}
}

func TestBatchAllocZeroWidth(t *testing.T) {
	b := NewBatch(2)
	row := b.Alloc(0)
	if len(row) != 0 || b.Len() != 1 {
		t.Errorf("zero-width alloc: row=%v len=%d", row, b.Len())
	}
}

func TestBatchAllocIsolation(t *testing.T) {
	b := NewBatch(4)
	r1 := b.Alloc(3)
	r2 := b.Alloc(3)
	for i := range r1 {
		r1[i] = Str("one")
	}
	for i := range r2 {
		r2[i] = Str("two")
	}
	if !Equal(r1[2], Str("one")) || !Equal(r2[0], Str("two")) {
		t.Errorf("arena rows overlap: r1=%v r2=%v", r1, r2)
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if b.Cap() != BatchCap {
		t.Fatalf("pooled cap = %d", b.Cap())
	}
	b.Append(TupleOf(1))
	PutBatch(b)
	b2 := GetBatch()
	if b2.Len() != 0 {
		t.Error("pool returned a dirty batch")
	}
	PutBatch(b2)
	// Odd-sized batches are not pooled, and nil is tolerated.
	PutBatch(NewBatch(3))
	PutBatch(nil)
}
