package value

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary codec for values. The key-value substrate stores opaque byte
// payloads (as Redis or Voldemort would); tuples are encoded with this codec
// on write and decoded on read, so KV reads pay a realistic decode cost
// while remaining far cheaper than document traversal.
//
// Wire format: one kind byte, then kind-specific payload. Varints use
// encoding/binary's unsigned LEB128. Strings are length-prefixed. Tuples and
// lists are count-prefixed sequences. Documents are encoded structurally.

var errCodec = errors.New("value: malformed encoding")

// Encode appends the encoding of v to dst and returns the extended slice.
func Encode(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case Null:
		return append(dst, byte(KindNull))
	case Bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(append(dst, byte(KindBool)), b)
	case Int:
		dst = append(dst, byte(KindInt))
		return binary.AppendVarint(dst, int64(x))
	case Float:
		dst = append(dst, byte(KindFloat))
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(x)))
	case Str:
		dst = append(dst, byte(KindString))
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case Tuple:
		dst = append(dst, byte(KindTuple))
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, e := range x {
			dst = Encode(dst, e)
		}
		return dst
	case List:
		dst = append(dst, byte(KindList))
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, e := range x {
			dst = Encode(dst, e)
		}
		return dst
	case *Doc:
		dst = append(dst, byte(KindDoc))
		return encodeDoc(dst, x)
	default:
		panic(fmt.Sprintf("value: cannot encode %T", v))
	}
}

func encodeDoc(dst []byte, d *Doc) []byte {
	dst = append(dst, byte(d.DKind))
	switch d.DKind {
	case DocScalar:
		return Encode(dst, d.Scalar)
	case DocObject:
		dst = binary.AppendUvarint(dst, uint64(len(d.Fields)))
		for _, f := range d.Fields {
			dst = binary.AppendUvarint(dst, uint64(len(f.Name)))
			dst = append(dst, f.Name...)
			dst = encodeDoc(dst, f.Val)
		}
		return dst
	case DocArray:
		dst = binary.AppendUvarint(dst, uint64(len(d.Elems)))
		for _, e := range d.Elems {
			dst = encodeDoc(dst, e)
		}
		return dst
	default:
		panic("value: invalid doc kind")
	}
}

// Decode decodes one value from the front of b, returning the value and the
// remaining bytes.
func Decode(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errCodec
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindNull:
		return Null{}, b, nil
	case KindBool:
		if len(b) == 0 {
			return nil, nil, errCodec
		}
		return Bool(b[0] == 1), b[1:], nil
	case KindInt:
		x, n := binary.Varint(b)
		if n <= 0 {
			return nil, nil, errCodec
		}
		return Int(x), b[n:], nil
	case KindFloat:
		if len(b) < 8 {
			return nil, nil, errCodec
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case KindString:
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < n {
			return nil, nil, errCodec
		}
		return Str(b[w : w+int(n)]), b[w+int(n):], nil
	case KindTuple, KindList:
		n, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errCodec
		}
		b = b[w:]
		elems := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			var e Value
			var err error
			e, b, err = Decode(b)
			if err != nil {
				return nil, nil, err
			}
			elems = append(elems, e)
		}
		if kind == KindTuple {
			return Tuple(elems), b, nil
		}
		return List(elems), b, nil
	case KindDoc:
		return decodeDoc(b)
	default:
		return nil, nil, fmt.Errorf("%w: unknown kind %d", errCodec, kind)
	}
}

func decodeDoc(b []byte) (*Doc, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errCodec
	}
	dk := DocKind(b[0])
	b = b[1:]
	switch dk {
	case DocScalar:
		v, rest, err := Decode(b)
		if err != nil {
			return nil, nil, err
		}
		return DScalar(v), rest, nil
	case DocObject:
		n, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errCodec
		}
		b = b[w:]
		d := &Doc{DKind: DocObject}
		for i := uint64(0); i < n; i++ {
			ln, lw := binary.Uvarint(b)
			if lw <= 0 || uint64(len(b)-lw) < ln {
				return nil, nil, errCodec
			}
			name := string(b[lw : lw+int(ln)])
			b = b[lw+int(ln):]
			var sub *Doc
			var err error
			sub, b, err = decodeDoc(b)
			if err != nil {
				return nil, nil, err
			}
			d.Fields = append(d.Fields, Field{Name: name, Val: sub})
		}
		return d, b, nil
	case DocArray:
		n, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, errCodec
		}
		b = b[w:]
		d := &Doc{DKind: DocArray}
		for i := uint64(0); i < n; i++ {
			var sub *Doc
			var err error
			sub, b, err = decodeDoc(b)
			if err != nil {
				return nil, nil, err
			}
			d.Elems = append(d.Elems, sub)
		}
		return d, b, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown doc kind %d", errCodec, dk)
	}
}

// EncodeTuple encodes a tuple to a fresh byte slice.
func EncodeTuple(t Tuple) []byte { return Encode(nil, t) }

// DecodeTuple decodes a tuple encoded by EncodeTuple.
func DecodeTuple(b []byte) (Tuple, error) {
	v, rest, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCodec, len(rest))
	}
	t, ok := v.(Tuple)
	if !ok {
		return nil, fmt.Errorf("%w: not a tuple", errCodec)
	}
	return t, nil
}
