package value

import (
	"fmt"
	"sort"
	"strings"
)

// DocKind discriminates document node shapes.
type DocKind int

const (
	// DocScalar wraps an atomic value.
	DocScalar DocKind = iota
	// DocObject is a field→subdocument mapping.
	DocObject
	// DocArray is an ordered list of subdocuments.
	DocArray
)

// Doc is a JSON-like document tree, the native payload of the document
// substrate (the MongoDB stand-in) and of nested result construction. Docs
// are Values, so documents can flow through the execution engine like any
// other value.
type Doc struct {
	DKind  DocKind
	Scalar Value   // DocScalar
	Fields []Field // DocObject, sorted by name
	Elems  []*Doc  // DocArray
}

// Field is one object member.
type Field struct {
	Name string
	Val  *Doc
}

// Kind implements Value.
func (*Doc) Kind() Kind { return KindDoc }

// DScalar wraps an atomic value as a scalar document.
func DScalar(v Value) *Doc { return &Doc{DKind: DocScalar, Scalar: v} }

// DObj builds an object document from alternating name/value pairs, where
// values may be *Doc, Value, or native Go values (converted via Of).
func DObj(pairs ...any) *Doc {
	if len(pairs)%2 != 0 {
		panic("value: DObj requires name/value pairs")
	}
	d := &Doc{DKind: DocObject}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("value: DObj field name %v is not a string", pairs[i]))
		}
		d.Fields = append(d.Fields, Field{Name: name, Val: toDoc(pairs[i+1])})
	}
	sort.SliceStable(d.Fields, func(a, b int) bool { return d.Fields[a].Name < d.Fields[b].Name })
	return d
}

// DArr builds an array document.
func DArr(elems ...any) *Doc {
	d := &Doc{DKind: DocArray}
	for _, e := range elems {
		d.Elems = append(d.Elems, toDoc(e))
	}
	return d
}

func toDoc(v any) *Doc {
	switch x := v.(type) {
	case *Doc:
		return x
	case Value:
		return DScalar(x)
	default:
		return DScalar(Of(v))
	}
}

// Get returns the subdocument at a field name (objects only).
func (d *Doc) Get(name string) (*Doc, bool) {
	if d == nil || d.DKind != DocObject {
		return nil, false
	}
	i := sort.Search(len(d.Fields), func(i int) bool { return d.Fields[i].Name >= name })
	if i < len(d.Fields) && d.Fields[i].Name == name {
		return d.Fields[i].Val, true
	}
	return nil, false
}

// Path descends a dotted path like "address.city". Array nodes are
// traversed implicitly: the path matches if any element matches (returning
// the first match).
func (d *Doc) Path(path string) (*Doc, bool) {
	cur := d
	if path == "" {
		return cur, cur != nil
	}
	for _, step := range strings.Split(path, ".") {
		switch {
		case cur == nil:
			return nil, false
		case cur.DKind == DocObject:
			next, ok := cur.Get(step)
			if !ok {
				return nil, false
			}
			cur = next
		case cur.DKind == DocArray:
			found := false
			for _, e := range cur.Elems {
				if sub, ok := e.Path(step); ok {
					cur, found = sub, true
					break
				}
			}
			if !found {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return cur, true
}

// ScalarAt returns the scalar value at a dotted path, or (nil,false).
func (d *Doc) ScalarAt(path string) (Value, bool) {
	sub, ok := d.Path(path)
	if !ok || sub.DKind != DocScalar {
		return nil, false
	}
	return sub.Scalar, true
}

// Key implements Value.
func (d *Doc) Key() string {
	var sb strings.Builder
	d.writeKey(&sb)
	return sb.String()
}

func (d *Doc) writeKey(sb *strings.Builder) {
	if d == nil {
		sb.WriteString("D∅")
		return
	}
	switch d.DKind {
	case DocScalar:
		sb.WriteString("Ds")
		k := d.Scalar.Key()
		fmt.Fprintf(sb, "%d:%s", len(k), k)
	case DocObject:
		sb.WriteString("Do{")
		for _, f := range d.Fields {
			fmt.Fprintf(sb, "%d:%s=", len(f.Name), f.Name)
			f.Val.writeKey(sb)
		}
		sb.WriteByte('}')
	case DocArray:
		sb.WriteString("Da[")
		for _, e := range d.Elems {
			e.writeKey(sb)
		}
		sb.WriteByte(']')
	}
}

// String renders the document as compact JSON-ish text.
func (d *Doc) String() string {
	var sb strings.Builder
	d.writeString(&sb)
	return sb.String()
}

func (d *Doc) writeString(sb *strings.Builder) {
	if d == nil {
		sb.WriteString("null")
		return
	}
	switch d.DKind {
	case DocScalar:
		sb.WriteString(d.Scalar.String())
	case DocObject:
		sb.WriteByte('{')
		for i, f := range d.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%q: ", f.Name)
			f.Val.writeString(sb)
		}
		sb.WriteByte('}')
	case DocArray:
		sb.WriteByte('[')
		for i, e := range d.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.writeString(sb)
		}
		sb.WriteByte(']')
	}
}

// Walk visits every node of the tree depth-first, passing the dotted path
// from the root ("" for the root itself).
func (d *Doc) Walk(fn func(path string, node *Doc)) {
	d.walk("", fn)
}

func (d *Doc) walk(path string, fn func(string, *Doc)) {
	if d == nil {
		return
	}
	fn(path, d)
	switch d.DKind {
	case DocObject:
		for _, f := range d.Fields {
			sub := f.Name
			if path != "" {
				sub = path + "." + f.Name
			}
			f.Val.walk(sub, fn)
		}
	case DocArray:
		for _, e := range d.Elems {
			e.walk(path, fn)
		}
	}
}
