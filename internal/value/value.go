// Package value defines the value system shared by ESTOCADA's storage
// substrates and its nested-relational execution engine: scalar values,
// fixed-width tuples, nested collections, and JSON-like documents, with
// total ordering, hashing keys, and a compact binary codec (used by the
// key-value substrate, which stores opaque byte payloads like Redis or
// Voldemort do).
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value kinds of the nested-relational model. Atomic
// kinds come first; Tuple and List are the nested constructors; Doc wraps a
// document tree (see doc.go).
type Kind int

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTuple
	KindList
	KindDoc
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindDoc:
		return "doc"
	default:
		return "invalid"
	}
}

// Value is one value of the nested-relational model.
type Value interface {
	Kind() Kind
	// Key returns a string equal for two values iff they are equal; keys of
	// different kinds never collide.
	Key() string
	String() string
}

// Null is the SQL-style missing value.
type Null struct{}

func (Null) Kind() Kind     { return KindNull }
func (Null) Key() string    { return "∅" }
func (Null) String() string { return "NULL" }

// Bool is a boolean value.
type Bool bool

func (Bool) Kind() Kind       { return KindBool }
func (b Bool) Key() string    { return "b" + strconv.FormatBool(bool(b)) }
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Int is a 64-bit integer value.
type Int int64

func (Int) Kind() Kind       { return KindInt }
func (i Int) Key() string    { return "i" + strconv.FormatInt(int64(i), 10) }
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a 64-bit floating-point value.
type Float float64

func (Float) Kind() Kind    { return KindFloat }
func (f Float) Key() string { return "f" + strconv.FormatFloat(float64(f), 'g', -1, 64) }
func (f Float) String() string {
	return strconv.FormatFloat(float64(f), 'g', -1, 64)
}

// Str is a string value.
type Str string

func (Str) Kind() Kind       { return KindString }
func (s Str) Key() string    { return "s" + string(s) }
func (s Str) String() string { return strconv.Quote(string(s)) }

// Tuple is a fixed-width row of values.
type Tuple []Value

func (Tuple) Kind() Kind { return KindTuple }

// Key implements Value with length-prefixed element keys, so that
// ("ab","c") and ("a","bc") differ.
func (t Tuple) Key() string {
	var sb strings.Builder
	sb.WriteByte('T')
	for _, v := range t {
		k := v.Key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a shallow copy of the tuple (values are immutable).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// List is a nested collection of values (bag semantics; order preserved).
type List []Value

func (List) Kind() Kind { return KindList }

// Key implements Value order-insensitively (bag semantics): element keys are
// sorted before concatenation.
func (l List) Key() string {
	keys := make([]string, len(l))
	for i, v := range l {
		keys[i] = v.Key()
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('L')
	for _, k := range keys {
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

func (l List) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Of converts a native Go value into a Value. Supported inputs: nil, bool,
// int/int32/int64, float32/float64, string, Value (returned as-is), and
// slices of any supported input (becoming Lists).
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null{}
	case bool:
		return Bool(x)
	case int:
		return Int(x)
	case int32:
		return Int(x)
	case int64:
		return Int(x)
	case float32:
		return Float(x)
	case float64:
		return Float(x)
	case string:
		return Str(x)
	case Value:
		return x
	case []any:
		out := make(List, len(x))
		for i, e := range x {
			out[i] = Of(e)
		}
		return out
	default:
		return Str(fmt.Sprintf("%v", v))
	}
}

// TupleOf builds a Tuple from native Go values via Of.
func TupleOf(vs ...any) Tuple {
	out := make(Tuple, len(vs))
	for i, v := range vs {
		out[i] = Of(v)
	}
	return out
}

// Equal reports whether two values are equal.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Key() == b.Key()
}

// Compare totally orders values: first by kind, then within a kind by the
// natural order (numeric for Int/Float cross-compared numerically, lexical
// for strings, elementwise for tuples). It returns -1, 0, or 1.
func Compare(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	// Numeric kinds compare cross-kind by magnitude.
	if isNumeric(ka) && isNumeric(kb) {
		fa, fb := asFloat(a), asFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		// Equal magnitude: order Int < Float for determinism.
		return int(ka) - int(kb)
	}
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindNull:
		return 0
	case KindBool:
		ba, bb := bool(a.(Bool)), bool(b.(Bool))
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(string(a.(Str)), string(b.(Str)))
	case KindTuple:
		ta, tb := a.(Tuple), b.(Tuple)
		for i := 0; i < len(ta) && i < len(tb); i++ {
			if c := Compare(ta[i], tb[i]); c != 0 {
				return c
			}
		}
		return len(ta) - len(tb)
	default:
		return strings.Compare(a.Key(), b.Key())
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func asFloat(v Value) float64 {
	switch x := v.(type) {
	case Int:
		return float64(x)
	case Float:
		return float64(x)
	default:
		return 0
	}
}
