// Package value defines the value system shared by ESTOCADA's storage
// substrates and its nested-relational execution engine: scalar values,
// fixed-width tuples, nested collections, and JSON-like documents, with
// total ordering, hashing keys, and a compact binary codec (used by the
// key-value substrate, which stores opaque byte payloads like Redis or
// Voldemort do).
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value kinds of the nested-relational model. Atomic
// kinds come first; Tuple and List are the nested constructors; Doc wraps a
// document tree (see doc.go).
type Kind int

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTuple
	KindList
	KindDoc
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindDoc:
		return "doc"
	default:
		return "invalid"
	}
}

// Value is one value of the nested-relational model.
type Value interface {
	Kind() Kind
	// Key returns a string equal for two values iff they are equal; keys of
	// different kinds never collide.
	Key() string
	String() string
}

// Null is the SQL-style missing value.
type Null struct{}

func (Null) Kind() Kind     { return KindNull }
func (Null) Key() string    { return "∅" }
func (Null) String() string { return "NULL" }

// Bool is a boolean value.
type Bool bool

func (Bool) Kind() Kind       { return KindBool }
func (b Bool) Key() string    { return "b" + strconv.FormatBool(bool(b)) }
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Int is a 64-bit integer value.
type Int int64

func (Int) Kind() Kind       { return KindInt }
func (i Int) Key() string    { return "i" + strconv.FormatInt(int64(i), 10) }
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is a 64-bit floating-point value.
type Float float64

func (Float) Kind() Kind    { return KindFloat }
func (f Float) Key() string { return "f" + strconv.FormatFloat(float64(f), 'g', -1, 64) }
func (f Float) String() string {
	return strconv.FormatFloat(float64(f), 'g', -1, 64)
}

// Str is a string value.
type Str string

func (Str) Kind() Kind       { return KindString }
func (s Str) Key() string    { return "s" + string(s) }
func (s Str) String() string { return strconv.Quote(string(s)) }

// Tuple is a fixed-width row of values.
type Tuple []Value

func (Tuple) Kind() Kind { return KindTuple }

// Key implements Value with length-prefixed element keys, so that
// ("ab","c") and ("a","bc") differ.
func (t Tuple) Key() string { return string(AppendKey(nil, t)) }

func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a shallow copy of the tuple (values are immutable).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// List is a nested collection of values (bag semantics; order preserved).
type List []Value

func (List) Kind() Kind { return KindList }

// Key implements Value order-insensitively (bag semantics): element keys are
// sorted before concatenation.
func (l List) Key() string {
	keys := make([]string, len(l))
	for i, v := range l {
		keys[i] = v.Key()
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('L')
	for _, k := range keys {
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

func (l List) String() string {
	parts := make([]string, len(l))
	for i, v := range l {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// AppendKey appends v's canonical hash key (identical bytes to v.Key())
// to dst and returns the extended slice. With a reused buffer this
// renders keys without allocating — the vectorized executor's join,
// distinct and bind-key operators probe their hash tables via
// map[string(buf)] lookups, which Go evaluates allocation-free, and only
// materialize a string when inserting a new entry.
//
//lint:hot
func AppendKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return dst
	case Null:
		return append(dst, "∅"...)
	case Bool:
		dst = append(dst, 'b')
		return strconv.AppendBool(dst, bool(x))
	case Int:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, int64(x), 10)
	case Float:
		dst = append(dst, 'f')
		return strconv.AppendFloat(dst, float64(x), 'g', -1, 64)
	case Str:
		dst = append(dst, 's')
		return append(dst, string(x)...)
	case Tuple:
		dst = append(dst, 'T')
		for _, e := range x {
			// Render the element, then shift it right to make room for
			// its decimal length prefix (a small memmove, no allocation).
			start := len(dst)
			dst = AppendKey(dst, e)
			elemLen := len(dst) - start
			var lb [21]byte
			pre := strconv.AppendInt(lb[:0], int64(elemLen), 10)
			pre = append(pre, ':')
			dst = append(dst, pre...)
			copy(dst[start+len(pre):], dst[start:len(dst)-len(pre)])
			copy(dst[start:], pre)
		}
		return dst
	default: // List (sorts element keys), Doc: delegate to Key
		return append(dst, v.Key()...)
	}
}

// Of converts a native Go value into a Value. Supported inputs: nil, bool,
// int/int32/int64, float32/float64, string, Value (returned as-is), and
// slices of any supported input (becoming Lists).
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null{}
	case bool:
		return Bool(x)
	case int:
		return Int(x)
	case int32:
		return Int(x)
	case int64:
		return Int(x)
	case float32:
		return Float(x)
	case float64:
		return Float(x)
	case string:
		return Str(x)
	case Value:
		return x
	case []any:
		out := make(List, len(x))
		for i, e := range x {
			out[i] = Of(e)
		}
		return out
	default:
		return Str(fmt.Sprintf("%v", v))
	}
}

// TupleOf builds a Tuple from native Go values via Of.
func TupleOf(vs ...any) Tuple {
	out := make(Tuple, len(vs))
	for i, v := range vs {
		out[i] = Of(v)
	}
	return out
}

// Equal reports whether two values are equal. Scalar kinds and tuples
// compare directly without rendering hash keys — this sits in the
// per-row filter loop of the vectorized executor, where the old
// Key()==Key() comparison cost two string allocations per call. The
// semantics are exactly those of key equality: kinds never compare equal
// across each other (Int(3) ≠ Float(3)), floats distinguish -0 from +0
// and treat NaN as equal to NaN, and lists keep their order-insensitive
// bag semantics.
//
//lint:hot
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Null:
		_, ok := b.(Null)
		return ok
	case Float:
		y, ok := b.(Float)
		if !ok {
			return false
		}
		fa, fb := float64(x), float64(y)
		if fa == 0 && fb == 0 {
			// Key() renders -0 as "-0": keep them distinct.
			return math.Signbit(fa) == math.Signbit(fb)
		}
		return fa == fb || (fa != fa && fb != fb) // NaN keys are equal
	case Tuple:
		y, ok := b.(Tuple)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case nil:
		return b == nil
	default: // List (order-insensitive), Doc: fall back to canonical keys
		if b == nil {
			return false
		}
		if a.Kind() != b.Kind() {
			return false
		}
		return a.Key() == b.Key()
	}
}

// Compare totally orders values: first by kind, then within a kind by the
// natural order (numeric for Int/Float cross-compared numerically, lexical
// for strings, elementwise for tuples). It returns -1, 0, or 1.
func Compare(a, b Value) int {
	ka, kb := a.Kind(), b.Kind()
	// Numeric kinds compare cross-kind by magnitude.
	if isNumeric(ka) && isNumeric(kb) {
		fa, fb := asFloat(a), asFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		// Equal magnitude: order Int < Float for determinism.
		return int(ka) - int(kb)
	}
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindNull:
		return 0
	case KindBool:
		ba, bb := bool(a.(Bool)), bool(b.(Bool))
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(string(a.(Str)), string(b.(Str)))
	case KindTuple:
		ta, tb := a.(Tuple), b.(Tuple)
		for i := 0; i < len(ta) && i < len(tb); i++ {
			if c := Compare(ta[i], tb[i]); c != 0 {
				return c
			}
		}
		return len(ta) - len(tb)
	default:
		return strings.Compare(a.Key(), b.Key())
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func asFloat(v Value) float64 {
	switch x := v.(type) {
	case Int:
		return float64(x)
	case Float:
		return float64(x)
	default:
		return 0
	}
}
