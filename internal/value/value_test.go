package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfAndKinds(t *testing.T) {
	cases := []struct {
		in   any
		kind Kind
	}{
		{nil, KindNull},
		{true, KindBool},
		{int(3), KindInt},
		{int64(3), KindInt},
		{3.5, KindFloat},
		{"x", KindString},
		{[]any{1, "a"}, KindList},
	}
	for _, c := range cases {
		if got := Of(c.in).Kind(); got != c.kind {
			t.Errorf("Of(%v).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestKeysDistinguishKindsAndValues(t *testing.T) {
	vals := []Value{
		Null{}, Bool(true), Bool(false), Int(1), Float(1), Str("1"),
		Str("true"), TupleOf(1, 2), TupleOf("ab"), TupleOf("a", "b"),
		List{Int(1)}, DScalar(Int(1)),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		if prev, ok := seen[v.Key()]; ok {
			t.Errorf("key collision: %v vs %v (key %q)", prev, v, v.Key())
		}
		seen[v.Key()] = v
	}
}

func TestTupleKeyLengthPrefix(t *testing.T) {
	a := TupleOf("ab", "c")
	b := TupleOf("a", "bc")
	if a.Key() == b.Key() {
		t.Error(`("ab","c") and ("a","bc") must have distinct keys`)
	}
}

func TestListKeyOrderInsensitive(t *testing.T) {
	a := List{Int(1), Int(2)}
	b := List{Int(2), Int(1)}
	if a.Key() != b.Key() {
		t.Error("list keys must be bag-equal regardless of order")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 || Compare(Int(2), Int(1)) <= 0 || Compare(Int(2), Int(2)) != 0 {
		t.Error("int compare broken")
	}
	if Compare(Int(1), Float(1.5)) >= 0 {
		t.Error("cross-numeric compare broken")
	}
	if Compare(Str("a"), Str("b")) >= 0 {
		t.Error("string compare broken")
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("bool compare broken")
	}
	if Compare(TupleOf(1, 2), TupleOf(1, 3)) >= 0 {
		t.Error("tuple compare broken")
	}
	if Compare(TupleOf(1), TupleOf(1, 0)) >= 0 {
		t.Error("shorter tuple must sort first")
	}
	// Distinct kinds are ordered by kind.
	if Compare(Null{}, Str("x")) >= 0 {
		t.Error("null must sort before string")
	}
}

func TestCompareAntisymmetricQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	f := func(a, b int64, s1, s2 string) bool {
		va, vb := Value(Int(a)), Value(Int(b))
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		vs1, vs2 := Value(Str(s1)), Value(Str(s2))
		return Compare(vs1, vs2) == -Compare(vs2, vs1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEqualConsistentWithCompareQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	f := func(a, b int64) bool {
		va, vb := Value(Int(a)), Value(Int(b))
		return Equal(va, vb) == (Compare(va, vb) == 0)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDocConstructionAndPath(t *testing.T) {
	d := DObj(
		"name", "ada",
		"address", DObj("city", "paris", "zip", 75012),
		"tags", DArr("vip", "early"),
	)
	if v, ok := d.ScalarAt("name"); !ok || !Equal(v, Str("ada")) {
		t.Errorf("name = %v, %v", v, ok)
	}
	if v, ok := d.ScalarAt("address.city"); !ok || !Equal(v, Str("paris")) {
		t.Errorf("address.city = %v, %v", v, ok)
	}
	if v, ok := d.ScalarAt("address.zip"); !ok || !Equal(v, Int(75012)) {
		t.Errorf("address.zip = %v, %v", v, ok)
	}
	if _, ok := d.ScalarAt("address.country"); ok {
		t.Error("missing path matched")
	}
	if _, ok := d.ScalarAt("name.sub"); ok {
		t.Error("descending through a scalar matched")
	}
}

func TestDocArrayTraversal(t *testing.T) {
	d := DObj("items", DArr(
		DObj("sku", "a1", "qty", 2),
		DObj("sku", "b2", "qty", 5),
	))
	// Implicit array traversal: first match wins.
	if v, ok := d.ScalarAt("items.sku"); !ok || !Equal(v, Str("a1")) {
		t.Errorf("items.sku = %v, %v", v, ok)
	}
}

func TestDocFieldsSorted(t *testing.T) {
	d := DObj("z", 1, "a", 2)
	if d.Fields[0].Name != "a" || d.Fields[1].Name != "z" {
		t.Errorf("fields not sorted: %v", d)
	}
	// Get uses binary search over sorted fields.
	if _, ok := d.Get("z"); !ok {
		t.Error("Get(z) failed")
	}
}

func TestDocKeyEquality(t *testing.T) {
	d1 := DObj("a", 1, "b", DArr(1, 2))
	d2 := DObj("b", DArr(1, 2), "a", 1) // same content, different build order
	if d1.Key() != d2.Key() {
		t.Error("equal docs must share keys")
	}
	d3 := DObj("a", 1, "b", DArr(2, 1)) // arrays are ordered
	if d1.Key() == d3.Key() {
		t.Error("array order must matter")
	}
}

func TestDocWalk(t *testing.T) {
	d := DObj("a", 1, "b", DObj("c", 2))
	paths := map[string]bool{}
	d.Walk(func(p string, n *Doc) { paths[p] = true })
	for _, want := range []string{"", "a", "b", "b.c"} {
		if !paths[want] {
			t.Errorf("walk missed path %q (got %v)", want, paths)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	vals := []Value{
		Null{},
		Bool(true),
		Int(-42),
		Int(1 << 40),
		Float(3.14159),
		Str(""),
		Str("héllo"),
		TupleOf(1, "a", 2.5, true),
		Tuple{},
		List{Int(1), TupleOf("x", 9)},
		DObj("user", "u1", "cart", DArr(DObj("sku", "a", "qty", 1))),
	}
	for _, v := range vals {
		b := Encode(nil, v)
		got, rest, err := Decode(b)
		if err != nil {
			t.Errorf("decode(%v): %v", v, err)
			continue
		}
		if len(rest) != 0 {
			t.Errorf("decode(%v): %d trailing bytes", v, len(rest))
		}
		if !Equal(got, v) {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestCodecTupleHelpers(t *testing.T) {
	tp := TupleOf("u1", 33, 2.5)
	b := EncodeTuple(tp)
	got, err := DecodeTuple(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, tp) {
		t.Errorf("got %v, want %v", got, tp)
	}
	if _, err := DecodeTuple(append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeTuple(EncodeTuple(nil)[:1]); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := DecodeTuple(Encode(nil, Int(1))); err == nil {
		t.Error("non-tuple accepted by DecodeTuple")
	}
}

func TestCodecMalformed(t *testing.T) {
	bad := [][]byte{
		{},
		{255},                      // unknown kind
		{byte(KindBool)},           // missing payload
		{byte(KindString), 5, 'a'}, // short string
		{byte(KindFloat), 1, 2},    // short float
	}
	for _, b := range bad {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("malformed %v accepted", b)
		}
	}
}

// Property: codec round-trips arbitrary flat tuples.
func TestCodecRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	f := func(i int64, s string, fl float64, b bool) bool {
		tp := TupleOf(i, s, fl, b)
		got, err := DecodeTuple(EncodeTuple(tp))
		return err == nil && Equal(got, tp)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTupleClone(t *testing.T) {
	tp := TupleOf(1, 2)
	cl := tp.Clone()
	cl[0] = Int(9)
	if !Equal(tp[0], Int(1)) {
		t.Error("clone aliases original")
	}
}
