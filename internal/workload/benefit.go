package workload

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/translate"
)

// altCostCeiling clamps the "without this fragment" cost when the
// workload query becomes unanswerable or unplannable — a large but
// finite stand-in so one irreplaceable fragment does not drown every
// other score.
const altCostCeiling = 1e9

// benefitScores returns the cached per-fragment benefit map, recomputing
// it when stale (older than BenefitInterval) or when force is set. The
// map must not be mutated by callers.
func (a *Accountant) benefitScores(force bool) map[string]float64 {
	if a == nil || a.opts.Catalog == nil || a.opts.Stores == nil || a.opts.Schema == nil {
		return nil
	}
	a.benefitMu.Lock()
	defer a.benefitMu.Unlock()
	if !force && a.benefits != nil && a.now().Sub(a.benefitAt) < a.opts.BenefitInterval {
		return a.benefits
	}
	a.benefits = a.computeBenefits()
	a.benefitAt = a.now()
	return a.benefits
}

// RecomputeBenefits forces an immediate benefit recomputation (test and
// admin hook; scrapes and snapshots use the cached cadence).
func (a *Accountant) RecomputeBenefits() map[string]float64 {
	return a.benefitScores(true)
}

// hotEntry pairs an entry with the state benefit scoring needs.
type hotEntry struct {
	q       pivot.CQ
	bound   []int
	queries int64
	base    float64
	frags   []string
}

// computeBenefits scores each fragment used by the hottest fingerprints:
// the planner's best cost for the query *without* the fragment minus its
// observed best cost with it, weighted by the observed query count. A
// positive score means dropping the fragment would make the workload
// that much more expensive — the advisor's signal that it earns its
// keep; a zero score means the planner has an equally good alternative.
func (a *Accountant) computeBenefits() map[string]float64 {
	var hot []hotEntry
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			e.mu.Lock()
			if e.hasQuery && e.lastCost > 0 && len(e.frags) > 0 {
				h := hotEntry{q: e.q, bound: e.bound, queries: e.queries.Load(), base: e.lastCost}
				for name := range e.frags {
					h.frags = append(h.frags, name)
				}
				sort.Strings(h.frags)
				hot = append(hot, h)
			}
			e.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].queries > hot[j].queries })
	if len(hot) > a.opts.BenefitTopK {
		hot = hot[:a.opts.BenefitTopK]
	}
	benefits := map[string]float64{}
	for _, h := range hot {
		for _, frag := range h.frags {
			if _, ok := benefits[frag]; !ok {
				benefits[frag] = 0
			}
			alt := a.costWithout(h.q, h.bound, frag)
			if d := alt - h.base; d > 0 {
				benefits[frag] += d * float64(h.queries)
			}
		}
	}
	return benefits
}

// costWithout is the planner's best cost for q against a hypothetical
// catalog missing the named fragment (altCostCeiling when unanswerable).
func (a *Accountant) costWithout(q pivot.CQ, bound []int, frag string) float64 {
	hyp := cloneCatalogWithout(a.opts.Catalog, frag)
	res, err := rewrite.Rewrite(q, hyp.Views(""), rewrite.Options{
		Schema:             a.opts.Schema(),
		AccessPatterns:     hyp.AccessPatterns(),
		BoundHeadPositions: bound,
	})
	if err != nil || len(res.Rewritings) == 0 {
		return altCostCeiling
	}
	rewritings := make([]pivot.CQ, 0, len(res.Rewritings))
	for _, r := range res.Rewritings {
		rewritings = append(rewritings, bindPlaceholders(r, bound))
	}
	planner := &translate.Planner{Catalog: hyp, Stores: a.opts.Stores}
	best, _, err := planner.ChooseBest(rewritings)
	if err != nil {
		return altCostCeiling
	}
	if best.Cost > altCostCeiling {
		return altCostCeiling
	}
	return best.Cost
}

// bindPlaceholders substitutes an out-of-band constant for each
// parameterized head variable so hypothetical plans build (the advisor
// uses the same trick for its what-if costing).
func bindPlaceholders(r pivot.CQ, boundPos []int) pivot.CQ {
	if len(boundPos) == 0 {
		return r
	}
	sub := pivot.NewSubst()
	for _, pos := range boundPos {
		if pos >= 0 && pos < len(r.Head.Args) {
			if v, ok := r.Head.Args[pos].(pivot.Var); ok {
				sub[v] = pivot.CStr("\x00wl")
			}
		}
	}
	return r.Apply(sub)
}

// cloneCatalogWithout is a field-wise catalog clone (a *Fragment value
// copy would copy the stats lock; statistics snapshot through instead)
// skipping the named fragment.
func cloneCatalogWithout(c *catalog.Catalog, skip string) *catalog.Catalog {
	out := catalog.New()
	for _, f := range c.All() {
		if f.Name == skip {
			continue
		}
		cp := &catalog.Fragment{
			Name: f.Name, Dataset: f.Dataset, View: f.View, Store: f.Store,
			Layout: f.Layout, Access: f.Access, Credentials: f.Credentials,
			Stats: f.StatsSnapshot(),
		}
		// Source fragments are valid by construction.
		_ = out.Register(cp)
	}
	return out
}
