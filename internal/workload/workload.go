// Package workload is ESTOCADA's workload observatory: an always-on,
// lock-cheap accounting layer that aggregates, per canonical query
// fingerprint, arrival rates (EWMA), per-phase latency digests,
// per-fragment access counts with attributed planner cost, and per-store
// work — the live observations the self-tuning loop (the advisor) runs
// on instead of hand-built synthetic workloads. Recording happens on
// every query Close: a shard-striped map lookup, a handful of atomic
// adds, lock-free histogram observes, and one short per-entry critical
// section, so the accountant sits under the service hot path at full
// throughput. Snapshots are JSON-ready (served at /debug/workload) and
// feed advisor.FromWorkload; per-fingerprint query counts and
// per-fragment benefit scores export as Prometheus families, both
// cardinality-capped.
package workload

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/engines/engine"
	"repro/internal/obs"
	"repro/internal/pivot"
	"repro/internal/translate"
)

// NumPhases is the service pipeline phase count; Phases in a Sample
// follow PhaseNames order. Kept in lockstep with the service layer's
// phase breakdown (parse … drain).
const NumPhases = 6

// PhaseNames names the service pipeline phases in Sample order.
var PhaseNames = [NumPhases]string{"parse", "canonicalize", "rewrite", "bind", "execute", "drain"}

// OverflowFingerprint is the shared bucket distinct fingerprints collapse
// into once MaxFingerprints is reached (mirroring the registry's
// "_other" series overflow). The bucket aggregates counts and latency
// but carries no query shape, so it is excluded from benefit scoring and
// advisor input.
const OverflowFingerprint = "_other"

// Options configures an Accountant. Catalog, Stores and Schema wire the
// planner's cost model in for fragment benefit scoring; all are optional
// (benefits stay zero without them). Registry is optional too — without
// it the accountant keeps its in-process state but exports no metrics.
type Options struct {
	// MaxFingerprints caps tracked fingerprints (and the Prometheus
	// estocada_workload_queries_total cardinality); beyond it new
	// fingerprints collapse into OverflowFingerprint. Default 512.
	MaxFingerprints int
	// RateTau is the EWMA time constant for per-fingerprint arrival
	// rates. Default 60s.
	RateTau time.Duration
	// BenefitInterval rate-limits fragment benefit recomputation (each
	// recompute re-plans hot queries against hypothetical catalogs).
	// Default 30s.
	BenefitInterval time.Duration
	// BenefitTopK bounds how many of the hottest fingerprints benefit
	// scoring re-plans. Default 32.
	BenefitTopK int
	// BenefitSeriesCap bounds the estocada_fragment_benefit label
	// cardinality; lower-scoring fragments aggregate into "_other".
	// Default 64.
	BenefitSeriesCap int

	Catalog *catalog.Catalog
	Stores  *translate.Stores
	// Schema supplies the current schema constraints for hypothetical
	// re-planning (fragments come and go, so it is a callback).
	Schema   func() pivot.Constraints
	Registry *obs.Registry
}

// Sample is one finished query observation, recorded at cursor Close.
type Sample struct {
	Fingerprint string
	// Query and Params describe the canonical shape (used for benefit
	// re-planning and advisor input); zero-valued for untracked callers.
	Query  pivot.CQ
	Params []pivot.Var
	Err    bool
	Rows   int64
	Total  time.Duration
	Phases [NumPhases]time.Duration
	// PerStore is the execution's exact per-store work attribution.
	PerStore map[string]engine.CounterSnapshot
	// Prov is the executed plan's provenance: per-clause fragment, store
	// and cost share. Nil when the plan carried none.
	Prov *translate.Provenance
}

// fragUse accumulates one fingerprint's use of one fragment.
type fragUse struct {
	Store    string  `json:"store"`
	Accesses int64   `json:"accesses"`
	Cost     float64 `json:"costUnits"`
}

// entry is the always-on accumulator for one fingerprint. Counters and
// histograms are lock-free; the rest is guarded by a short mutex.
type entry struct {
	fp string

	queries atomic.Int64
	errors  atomic.Int64
	rows    atomic.Int64

	total  obs.Histogram
	phases [NumPhases]obs.Histogram

	mu       sync.Mutex
	q        pivot.CQ
	bound    []int // parameterized head positions, derived once
	hasQuery bool
	rate     float64 // EWMA arrivals per second
	last     time.Time
	lastCost float64 // planner cost of the most recent plan
	frags    map[string]*fragUse
	stores   map[string]engine.CounterSnapshot
}

const numShards = 16

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// Accountant is the always-on workload accounting layer. Safe for
// concurrent use; a nil *Accountant records nothing.
type Accountant struct {
	opts    Options
	shards  [numShards]shard
	tracked atomic.Int64
	now     func() time.Time

	queriesVec *obs.CounterVec

	benefitMu sync.Mutex
	benefitAt time.Time
	benefits  map[string]float64
}

// New builds an Accountant and, when opts.Registry is set, registers its
// Prometheus families.
func New(opts Options) *Accountant {
	if opts.MaxFingerprints <= 0 {
		opts.MaxFingerprints = 512
	}
	if opts.RateTau <= 0 {
		opts.RateTau = 60 * time.Second
	}
	if opts.BenefitInterval <= 0 {
		opts.BenefitInterval = 30 * time.Second
	}
	if opts.BenefitTopK <= 0 {
		opts.BenefitTopK = 32
	}
	if opts.BenefitSeriesCap <= 0 {
		opts.BenefitSeriesCap = 64
	}
	a := &Accountant{opts: opts, now: time.Now}
	for i := range a.shards {
		a.shards[i].entries = map[string]*entry{}
	}
	if reg := opts.Registry; reg != nil {
		a.queriesVec = reg.NewCounter("estocada_workload_queries_total",
			"Queries observed per canonical fingerprint.", "fingerprint")
		a.queriesVec.SetMaxSeries(opts.MaxFingerprints)
		reg.GaugeFunc("estocada_fragment_benefit",
			"Estimated workload cost the fragment saves vs. the planner's best alternative without it (work units x observed queries).",
			[]string{"fragment"}, a.emitBenefits)
	}
	return a
}

// fnv-1a; fingerprints are short canonical strings.
func shardOf(fp string) int {
	h := uint32(2166136261)
	for i := 0; i < len(fp); i++ {
		h ^= uint32(fp[i])
		h *= 16777619
	}
	return int(h % numShards)
}

func (a *Accountant) entryFor(s *Sample) *entry {
	fp := s.Fingerprint
	if fp == "" {
		fp = OverflowFingerprint
	}
	sh := &a.shards[shardOf(fp)]
	sh.mu.RLock()
	e := sh.entries[fp]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	if fp != OverflowFingerprint && int(a.tracked.Load()) >= a.opts.MaxFingerprints {
		// Cardinality cap: collapse into the shared overflow bucket.
		return a.entryFor(&Sample{Fingerprint: OverflowFingerprint})
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e = sh.entries[fp]; e != nil {
		return e
	}
	e = &entry{fp: fp, frags: map[string]*fragUse{}, stores: map[string]engine.CounterSnapshot{}}
	if fp != OverflowFingerprint && len(s.Query.Body) > 0 {
		e.q = s.Query
		e.hasQuery = true
		e.bound = boundHeadPositions(s.Query, s.Params)
	}
	sh.entries[fp] = e
	a.tracked.Add(1)
	return e
}

// boundHeadPositions derives the parameterized head positions: head
// arguments that are one of the canonical parameter variables.
func boundHeadPositions(q pivot.CQ, params []pivot.Var) []int {
	if len(params) == 0 {
		return nil
	}
	set := make(map[pivot.Var]bool, len(params))
	for _, p := range params {
		set[p] = true
	}
	var out []int
	for i, t := range q.Head.Args {
		if v, ok := t.(pivot.Var); ok && set[v] {
			out = append(out, i)
		}
	}
	return out
}

// Record folds one finished query into the accounting. Nil-receiver safe.
func (a *Accountant) Record(s Sample) {
	if a == nil {
		return
	}
	e := a.entryFor(&s)
	e.queries.Add(1)
	if s.Err {
		e.errors.Add(1)
	}
	e.rows.Add(s.Rows)
	e.total.Observe(s.Total)
	for i, d := range s.Phases {
		if d > 0 {
			e.phases[i].Observe(d)
		}
	}
	now := a.now()
	e.mu.Lock()
	if !e.last.IsZero() {
		if dt := now.Sub(e.last).Seconds(); dt > 0 {
			w := math.Exp(-dt / a.opts.RateTau.Seconds())
			e.rate = w*e.rate + (1-w)/dt
		}
	}
	e.last = now
	if s.Prov != nil {
		e.lastCost = s.Prov.Cost
		for _, c := range s.Prov.Clauses {
			if c.Fragment == "" {
				continue
			}
			fu := e.frags[c.Fragment]
			if fu == nil {
				fu = &fragUse{Store: c.Store}
				e.frags[c.Fragment] = fu
			}
			fu.Accesses++
			fu.Cost += c.StepCost
		}
	}
	for store, cs := range s.PerStore {
		acc := e.stores[store]
		acc.Requests += cs.Requests
		acc.Scans += cs.Scans
		acc.Lookups += cs.Lookups
		acc.Tuples += cs.Tuples
		e.stores[store] = acc
	}
	e.mu.Unlock()
	if a.queriesVec != nil {
		a.queriesVec.Get1(e.fp).Inc()
	}
}

// PhaseDigest summarizes one pipeline phase's latency for a fingerprint.
type PhaseDigest struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50Us float64 `json:"p50Us"`
	P99Us float64 `json:"p99Us"`
}

// QueryStats is one fingerprint's aggregated observations.
type QueryStats struct {
	Fingerprint string `json:"fingerprint"`
	// Query is the canonical conjunctive-query text ("" for the overflow
	// bucket).
	Query              string                            `json:"query,omitempty"`
	BoundHeadPositions []int                             `json:"boundHeadPositions,omitempty"`
	Queries            int64                             `json:"queries"`
	Errors             int64                             `json:"errors,omitempty"`
	Rows               int64                             `json:"rows"`
	RatePerSec         float64                           `json:"ratePerSec"`
	P50Us              float64                           `json:"p50Us"`
	P99Us              float64                           `json:"p99Us"`
	Phases             []PhaseDigest                     `json:"phases,omitempty"`
	LastPlanCost       float64                           `json:"lastPlanCost,omitempty"`
	AttributedCost     float64                           `json:"attributedCost"`
	Fragments          map[string]fragUse                `json:"fragments,omitempty"`
	PerStore           map[string]engine.CounterSnapshot `json:"perStore,omitempty"`

	// CQ is the canonical shape for programmatic consumers
	// (advisor.FromWorkload); zero-valued for the overflow bucket.
	CQ pivot.CQ `json:"-"`
}

// FragmentStats aggregates one fragment's role in the observed workload.
type FragmentStats struct {
	Fragment string `json:"fragment"`
	Store    string `json:"store,omitempty"`
	// Accesses counts plan clauses that read the fragment.
	Accesses int64 `json:"accesses"`
	// AttributedCost is the summed planner step cost of those clauses.
	AttributedCost float64 `json:"attributedCost"`
	// Benefit is the estimated workload cost the fragment saves vs. the
	// best plans without it (see benefit.go); 0 until scored.
	Benefit float64 `json:"benefit"`
}

// Snapshot is a point-in-time view of the observed workload.
type Snapshot struct {
	Taken time.Time `json:"taken"`
	// Queries is sorted by attributed cost, descending — the tuner's
	// heavy hitters first.
	Queries   []QueryStats    `json:"queries"`
	Fragments []FragmentStats `json:"fragments"`
}

// Snapshot captures the current workload, refreshing fragment benefit
// scores if they are stale. Nil-receiver safe (returns a zero snapshot).
func (a *Accountant) Snapshot() Snapshot {
	if a == nil {
		return Snapshot{}
	}
	benefits := a.benefitScores(false)
	snap := Snapshot{Taken: a.now()}
	fragTotals := map[string]*FragmentStats{}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.RLock()
		entries := make([]*entry, 0, len(sh.entries))
		for _, e := range sh.entries {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			qs := e.stats()
			for name, fu := range qs.Fragments {
				ft := fragTotals[name]
				if ft == nil {
					ft = &FragmentStats{Fragment: name, Store: fu.Store}
					fragTotals[name] = ft
				}
				ft.Accesses += fu.Accesses
				ft.AttributedCost += fu.Cost
			}
			snap.Queries = append(snap.Queries, qs)
		}
	}
	sort.Slice(snap.Queries, func(i, j int) bool {
		if snap.Queries[i].AttributedCost != snap.Queries[j].AttributedCost {
			return snap.Queries[i].AttributedCost > snap.Queries[j].AttributedCost
		}
		return snap.Queries[i].Fingerprint < snap.Queries[j].Fingerprint
	})
	for name, b := range benefits {
		ft := fragTotals[name]
		if ft == nil {
			ft = &FragmentStats{Fragment: name}
			fragTotals[name] = ft
		}
		ft.Benefit = b
	}
	for _, ft := range fragTotals {
		snap.Fragments = append(snap.Fragments, *ft)
	}
	sort.Slice(snap.Fragments, func(i, j int) bool {
		if snap.Fragments[i].Benefit != snap.Fragments[j].Benefit {
			return snap.Fragments[i].Benefit > snap.Fragments[j].Benefit
		}
		if snap.Fragments[i].AttributedCost != snap.Fragments[j].AttributedCost {
			return snap.Fragments[i].AttributedCost > snap.Fragments[j].AttributedCost
		}
		return snap.Fragments[i].Fragment < snap.Fragments[j].Fragment
	})
	return snap
}

// stats snapshots one entry.
func (e *entry) stats() QueryStats {
	total := e.total.Snapshot()
	qs := QueryStats{
		Fingerprint: e.fp,
		Queries:     e.queries.Load(),
		Errors:      e.errors.Load(),
		Rows:        e.rows.Load(),
		P50Us:       total.Quantile(0.50) * 1e6,
		P99Us:       total.Quantile(0.99) * 1e6,
	}
	for i := range e.phases {
		s := e.phases[i].Snapshot()
		if s.Count == 0 {
			continue
		}
		qs.Phases = append(qs.Phases, PhaseDigest{
			Name:  PhaseNames[i],
			Count: s.Count,
			P50Us: s.Quantile(0.50) * 1e6,
			P99Us: s.Quantile(0.99) * 1e6,
		})
	}
	e.mu.Lock()
	qs.RatePerSec = e.rate
	qs.LastPlanCost = e.lastCost
	if e.hasQuery {
		qs.Query = e.q.String()
		qs.CQ = e.q
		qs.BoundHeadPositions = append([]int(nil), e.bound...)
	}
	if len(e.frags) > 0 {
		qs.Fragments = make(map[string]fragUse, len(e.frags))
		for name, fu := range e.frags {
			qs.Fragments[name] = *fu
			qs.AttributedCost += fu.Cost
		}
	}
	if len(e.stores) > 0 {
		qs.PerStore = make(map[string]engine.CounterSnapshot, len(e.stores))
		for s, cs := range e.stores {
			qs.PerStore[s] = cs
		}
	}
	e.mu.Unlock()
	return qs
}

// emitBenefits is the estocada_fragment_benefit scrape callback: cached
// scores, top BenefitSeriesCap by value, the rest aggregated into
// "_other".
func (a *Accountant) emitBenefits(emit func(labelValues []string, v float64)) {
	benefits := a.benefitScores(false)
	if len(benefits) == 0 {
		return
	}
	type fb struct {
		name string
		v    float64
	}
	all := make([]fb, 0, len(benefits))
	for name, v := range benefits {
		all = append(all, fb{name, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].name < all[j].name
	})
	capN := a.opts.BenefitSeriesCap
	var other float64
	for i, x := range all {
		if i < capN {
			emit([]string{x.name}, x.v)
		} else {
			other += x.v
		}
	}
	if len(all) > capN {
		emit([]string{"_other"}, other)
	}
}
