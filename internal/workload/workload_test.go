package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engines/engine"
	"repro/internal/obs"
	"repro/internal/pivot"
	"repro/internal/rewrite"
	"repro/internal/translate"
	"repro/internal/value"
)

func atom(pred string, args ...pivot.Term) pivot.Atom { return pivot.NewAtom(pred, args...) }
func v(name string) pivot.Var                         { return pivot.Var(name) }

func lookupSample(fp string, total time.Duration, cost float64) Sample {
	return Sample{
		Fingerprint: fp,
		Query: pivot.NewCQ(atom("Q", v("V0"), v("V1"), v("P0")),
			atom("Prefs", v("P0"), v("V0"), v("V1"))),
		Params: []pivot.Var{v("P0")},
		Rows:   3,
		Total:  total,
		Phases: [NumPhases]time.Duration{0, time.Microsecond, 10 * time.Microsecond,
			5 * time.Microsecond, total / 2, total / 4},
		PerStore: map[string]engine.CounterSnapshot{"pg": {Requests: 1, Lookups: 2, Tuples: 3}},
		Prov: &translate.Provenance{
			Cost: cost,
			Clauses: []translate.ClauseScore{
				{Atom: "Prefs", Fragment: "FPrefs", Store: "pg", StepCost: cost},
			},
		},
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	a := New(Options{})
	for i := 0; i < 5; i++ {
		a.Record(lookupSample("fp1", time.Millisecond, 40))
	}
	s := lookupSample("fp1", 2*time.Millisecond, 40)
	s.Err = true
	a.Record(s)
	a.Record(lookupSample("fp2", time.Millisecond, 10))

	snap := a.Snapshot()
	if len(snap.Queries) != 2 {
		t.Fatalf("queries = %d, want 2", len(snap.Queries))
	}
	// Sorted by attributed cost descending: fp1 (6×40) before fp2 (10).
	q := snap.Queries[0]
	if q.Fingerprint != "fp1" || q.Queries != 6 || q.Errors != 1 || q.Rows != 18 {
		t.Fatalf("fp1 stats = %+v", q)
	}
	if q.AttributedCost != 240 {
		t.Fatalf("fp1 attributed cost = %v, want 240", q.AttributedCost)
	}
	if len(q.BoundHeadPositions) != 1 || q.BoundHeadPositions[0] != 2 {
		t.Fatalf("bound head positions = %v, want [2]", q.BoundHeadPositions)
	}
	if q.Query == "" || len(q.CQ.Body) == 0 {
		t.Fatal("canonical query shape missing from snapshot")
	}
	if q.PerStore["pg"].Tuples != 18 {
		t.Fatalf("per-store tuples = %d, want 18", q.PerStore["pg"].Tuples)
	}
	fu, ok := q.Fragments["FPrefs"]
	if !ok || fu.Accesses != 6 || fu.Store != "pg" {
		t.Fatalf("fragment use = %+v", q.Fragments)
	}
	// Phase digests skip the empty parse phase.
	for _, ph := range q.Phases {
		if ph.Name == "parse" {
			t.Fatal("zero parse phase should be omitted")
		}
	}
	if len(snap.Fragments) != 1 || snap.Fragments[0].Fragment != "FPrefs" ||
		snap.Fragments[0].Accesses != 7 {
		t.Fatalf("fragment totals = %+v", snap.Fragments)
	}
}

func TestOverflowCollapse(t *testing.T) {
	a := New(Options{MaxFingerprints: 2})
	a.Record(lookupSample("fp1", time.Millisecond, 1))
	a.Record(lookupSample("fp2", time.Millisecond, 1))
	a.Record(lookupSample("fp3", time.Millisecond, 1))
	a.Record(lookupSample("fp4", time.Millisecond, 1))
	snap := a.Snapshot()
	if len(snap.Queries) != 3 {
		t.Fatalf("queries = %d, want 2 tracked + overflow", len(snap.Queries))
	}
	var other *QueryStats
	for i := range snap.Queries {
		if snap.Queries[i].Fingerprint == OverflowFingerprint {
			other = &snap.Queries[i]
		}
	}
	if other == nil || other.Queries != 2 {
		t.Fatalf("overflow bucket = %+v", other)
	}
	if other.Query != "" || len(other.CQ.Body) != 0 {
		t.Fatal("overflow bucket must carry no query shape")
	}
}

func TestEWMARate(t *testing.T) {
	a := New(Options{RateTau: time.Minute})
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }
	for i := 0; i < 10; i++ {
		a.Record(lookupSample("fp1", time.Millisecond, 1))
		now = now.Add(100 * time.Millisecond) // steady 10 qps
	}
	snap := a.Snapshot()
	rate := snap.Queries[0].RatePerSec
	if rate < 0.1 || rate > 10.5 {
		t.Fatalf("EWMA rate = %v, want within (0.1, 10.5] approaching 10", rate)
	}
	// More arrivals at the same cadence converge toward 10/s.
	for i := 0; i < 500; i++ {
		a.Record(lookupSample("fp1", time.Millisecond, 1))
		now = now.Add(100 * time.Millisecond)
	}
	rate = a.Snapshot().Queries[0].RatePerSec
	if rate < 5 || rate > 10.5 {
		t.Fatalf("converged EWMA rate = %v, want ~10", rate)
	}
}

func TestPrometheusExport(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(Options{MaxFingerprints: 2, Registry: reg})
	a.Record(lookupSample("fpa", time.Millisecond, 1))
	a.Record(lookupSample("fpb", time.Millisecond, 1))
	a.Record(lookupSample("fpc", time.Millisecond, 1)) // collapses to _other
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`estocada_workload_queries_total{fingerprint="fpa"} 1`,
		`estocada_workload_queries_total{fingerprint="fpb"} 1`,
		`estocada_workload_queries_total{fingerprint="_other"} 1`,
		"# TYPE estocada_fragment_benefit gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// benefitSystem deploys Prefs behind a single identity fragment so that
// dropping it makes the lookup unanswerable (benefit = ceiling - base).
func benefitSystem(t *testing.T) *core.System {
	t.Helper()
	s := core.New(core.Options{})
	s.AddRelStore("pg")
	args := []pivot.Term{v("a"), v("b"), v("c")}
	view := rewrite.NewView("FPrefs", pivot.NewCQ(
		pivot.NewAtom("FPrefs", args...), pivot.NewAtom("Prefs", args...)))
	f := &catalog.Fragment{
		Name: "FPrefs", Dataset: "mkt", View: view, Store: "pg",
		Layout: catalog.Layout{Kind: catalog.LayoutRel, Collection: "prefs",
			Columns: []string{"uid", "k", "val"}},
	}
	if err := s.RegisterFragment(f); err != nil {
		t.Fatal(err)
	}
	var rows []value.Tuple
	for i := 0; i < 50; i++ {
		rows = append(rows, value.Tuple{value.Int(i), value.Str("theme"), value.Str("dark")})
	}
	if err := s.Materialize("FPrefs", rows); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBenefitScores(t *testing.T) {
	sys := benefitSystem(t)
	a := New(Options{
		Catalog: sys.Catalog,
		Stores:  sys.Stores,
		Schema:  sys.SchemaConstraints,
	})
	s := Sample{
		Fingerprint: "fp1",
		Query:       pivot.NewCQ(atom("Q", v("u"), v("k"), v("val")), atom("Prefs", v("u"), v("k"), v("val"))),
		Total:       time.Millisecond,
		Prov: &translate.Provenance{
			Cost: 50,
			Clauses: []translate.ClauseScore{
				{Atom: "Prefs", Fragment: "FPrefs", Store: "pg", StepCost: 50},
			},
		},
	}
	for i := 0; i < 10; i++ {
		a.Record(s)
	}
	benefits := a.RecomputeBenefits()
	b, ok := benefits["FPrefs"]
	if !ok {
		t.Fatalf("no benefit score for FPrefs: %v", benefits)
	}
	// Without FPrefs the query is unanswerable: the score is the clamped
	// alternative minus the observed cost, times 10 observed queries.
	want := (altCostCeiling - 50) * 10
	if b != want {
		t.Fatalf("benefit = %v, want %v", b, want)
	}
	snap := a.Snapshot()
	if len(snap.Fragments) == 0 || snap.Fragments[0].Benefit != want {
		t.Fatalf("snapshot fragment benefit = %+v", snap.Fragments)
	}
}

func TestNilAccountant(t *testing.T) {
	var a *Accountant
	a.Record(Sample{Fingerprint: "x"})
	if snap := a.Snapshot(); len(snap.Queries) != 0 {
		t.Fatal("nil accountant must be inert")
	}
}
