#!/usr/bin/env sh
# bench_compare.sh OLD.json NEW.json — diff two `make bench N=<n>` snapshots
# (go test -json output) on the key benchmark series and fail if the new
# snapshot regresses any of them by more than THRESHOLD percent (default 10).
#
# Series and their metric:
#   ServiceThroughput_Hot{1,4,16}  qps    (higher is better)
#   ExecBatchScanJoin              ns/op  (lower is better)
set -eu

old=${1:?usage: bench_compare.sh OLD.json NEW.json}
new=${2:?usage: bench_compare.sh OLD.json NEW.json}
THRESHOLD=${THRESHOLD:-10}

# Snapshot numbers are not contiguous across PRs (a PR may not re-bench),
# so a named snapshot can legitimately be absent. That is not a
# regression: skip the comparison instead of failing the build.
for f in "$old" "$new"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: snapshot $f not present; skipping comparison" >&2
        exit 0
    fi
done

# extract FILE BENCH UNIT — pull the value reported just before UNIT on the
# bench's result line ("...\t     34835 qps\t...").
extract() {
    grep "\"Test\":\"Benchmark$2\"" "$1" | grep -- "$3" | head -1 |
        sed -E "s|.*[\\\\t ]([0-9.]+) $3.*|\1|"
}

fail=0
for bench in ServiceThroughput_Hot1 ServiceThroughput_Hot4 ServiceThroughput_Hot16 ExecBatchScanJoin; do
    case $bench in
    ServiceThroughput*) unit=qps higher=1 ;;
    *) unit=ns/op higher=0 ;;
    esac
    o=$(extract "$old" "$bench" "$unit")
    n=$(extract "$new" "$bench" "$unit")
    if [ -z "$o" ] || [ -z "$n" ]; then
        echo "MISSING  $bench ($unit): old='$o' new='$n'" >&2
        fail=1
        continue
    fi
    if ! awk -v o="$o" -v n="$n" -v thr="$THRESHOLD" -v hi="$higher" -v b="$bench" -v u="$unit" 'BEGIN {
        delta = hi ? (o - n) / o * 100 : (n - o) / o * 100
        printf "%-8s %-28s %-6s old=%s new=%s regression=%.1f%%\n",
            (delta > thr ? "FAIL" : "ok"), b, u, o, n, delta
        exit (delta > thr ? 1 : 0)
    }'; then
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "bench_compare: regression beyond ${THRESHOLD}% (or missing series)" >&2
    exit 1
fi
