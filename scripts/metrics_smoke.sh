#!/bin/sh
# End-to-end observability smoke test: boot estocada-serve on an
# ephemeral port, push one query through it, and assert that /metrics
# serves a non-empty Prometheus exposition whose query histograms have
# actually observed the request. Exercises the full wiring — server →
# service → stores → registry — that unit tests cover piecewise.
set -eu

PORT="${PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/estocada-serve"

go build -o "$BIN" ./cmd/estocada-serve

"$BIN" -addr "$ADDR" -users 80 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT

# Wait for readiness.
for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 $SRV 2>/dev/null; then
        echo "metrics-smoke: server died during startup" >&2
        exit 1
    fi
    sleep 0.2
done

curl -fsS "http://$ADDR/query" \
    -d '{"lang":"sql","query":"SELECT u.name FROM Users u WHERE u.city = '\''city03'\''"}' \
    >/dev/null

METRICS=$(curl -fsS "http://$ADDR/metrics")

fail() {
    echo "metrics-smoke: $1" >&2
    echo "$METRICS" | head -40 >&2
    exit 1
}

[ -n "$METRICS" ] || fail "/metrics is empty"
echo "$METRICS" | grep -q '^# TYPE estocada_query_seconds histogram' \
    || fail "missing estocada_query_seconds histogram"
echo "$METRICS" | grep -q '^estocada_query_seconds_count 1' \
    || fail "query histogram did not observe the request"
echo "$METRICS" | grep -q '^estocada_query_phase_seconds_count{phase="execute"} 1' \
    || fail "phase histogram did not observe the request"
echo "$METRICS" | grep -Eq '^estocada_store_latency_seconds_count\{store="[^"]+"\} [1-9]' \
    || fail "no store latency histogram observed the request"
echo "$METRICS" | grep -q '^estocada_queries_total 1' \
    || fail "query counter did not count the request"

echo "metrics-smoke: OK ($(echo "$METRICS" | grep -c '^estocada_') estocada series lines)"
