#!/bin/sh
# End-to-end workload-observatory smoke test: boot estocada-serve on an
# ephemeral port with keep-every-trace sampling, push queries through it,
# and assert the full observability loop — per-fingerprint workload
# accounting at /debug/workload, a retained request trace at
# /debug/traces (retrievable by the traceparent-echoed ID), and the
# workload + process Prometheus families on /metrics. Exercises the
# wiring — server → service → workload accountant → registry / trace
# ring — that unit tests cover piecewise.
set -eu

PORT="${PORT:-18081}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/estocada-serve"

go build -o "$BIN" ./cmd/estocada-serve

# -trace-sample 1: keep every finished trace so the assertions below are
# deterministic.
"$BIN" -addr "$ADDR" -users 80 -trace-sample 1 &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT

# Wait for readiness.
for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 $SRV 2>/dev/null; then
        echo "workload-smoke: server died during startup" >&2
        exit 1
    fi
    sleep 0.2
done

fail() {
    echo "workload-smoke: $1" >&2
    exit 1
}

# Three runs of one query shape: the workload accountant must fold them
# into a single fingerprint with queries=3.
for i in 1 2 3; do
    curl -fsS "http://$ADDR/query" \
        -d '{"lang":"sql","query":"SELECT u.name FROM Users u WHERE u.city = '\''city03'\''"}' \
        >/dev/null
done

WORKLOAD=$(curl -fsS "http://$ADDR/debug/workload")
echo "$WORKLOAD" | grep -q '"fingerprint"' \
    || fail "/debug/workload has no fingerprint entries"
echo "$WORKLOAD" | grep -q '"queries": 3' \
    || fail "workload snapshot did not count 3 queries for the fingerprint"
echo "$WORKLOAD" | grep -q '"ratePerSec"' \
    || fail "workload snapshot carries no arrival rate"
echo "$WORKLOAD" | grep -q '"fragments"' \
    || fail "workload snapshot carries no fragment accounting"

# A traced query: the response echoes a traceparent whose trace ID must
# resolve in the sampled-trace ring, with the service phase spans inside.
TP=$(curl -fsS -D - -o /dev/null "http://$ADDR/query" \
    -d '{"lang":"cq","query":"Q(u, p, d) :- Visits(u, p, d)"}' \
    | tr -d '\r' | awk 'tolower($1) == "traceparent:" {print $2}')
[ -n "$TP" ] || fail "query response carried no traceparent header"
TRACE_ID=$(echo "$TP" | cut -d- -f2)
TRACE=$(curl -fsS "http://$ADDR/debug/traces/$TRACE_ID") \
    || fail "trace $TRACE_ID not retrievable from /debug/traces"
echo "$TRACE" | grep -q '"service.query"' \
    || fail "retained trace has no service.query span"
curl -fsS "http://$ADDR/debug/traces?ndjson=1" | grep -q "$TRACE_ID" \
    || fail "NDJSON trace export missing the trace"

METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^estocada_workload_queries_total{fingerprint=' \
    || fail "missing estocada_workload_queries_total series"
echo "$METRICS" | grep -q '^# TYPE estocada_fragment_benefit gauge' \
    || fail "missing estocada_fragment_benefit family"
echo "$METRICS" | grep -q '^estocada_build_info{' \
    || fail "missing estocada_build_info"
echo "$METRICS" | grep -Eq '^estocada_uptime_seconds [0-9]' \
    || fail "missing estocada_uptime_seconds"
echo "$METRICS" | grep -Eq '^estocada_goroutines [1-9]' \
    || fail "missing estocada_goroutines"

echo "workload-smoke: OK (trace $TRACE_ID retained, $(echo "$WORKLOAD" | grep -c '"fingerprint"') workload entries)"
